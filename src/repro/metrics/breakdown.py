"""Per-instruction-class breakdown of captured redundancy.

The paper reports aggregate capture rates (Table 3); for understanding
*where* each technique wins, a per-class view is more useful: loads
behave differently from ALU ops (memory invalidation, address reuse),
branches can only be reused, and multiplies/divides gain the most per
hit (their execution latency is what reuse removes).

Attach a :class:`ClassBreakdown` to a core before running::

    breakdown = ClassBreakdown(core)
    core.run(...)
    print(breakdown.report().render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..isa.instruction import Instruction
from ..uarch.core import OutOfOrderCore
from ..uarch.entry import CommittedOp
from .report import Report

CLASSES = ("alu", "load", "store", "branch", "jump", "mult/div")


def classify(inst: Instruction) -> str:
    """Map an instruction to its breakdown class."""
    op = inst.opcode
    if op.is_load:
        return "load"
    if op.is_store:
        return "store"
    if op.is_branch:
        return "branch"
    if op.is_jump:
        return "jump"
    if op.writes_hi_lo or op.name in ("mfhi", "mflo"):
        return "mult/div"
    return "alu"


@dataclass
class ClassCounts:
    """Counters for one instruction class."""

    committed: int = 0
    reused: int = 0
    addr_reused: int = 0
    predicted: int = 0
    predicted_correct: int = 0
    executions: int = 0

    def rate(self, count: int) -> float:
        return count / self.committed if self.committed else 0.0


class ClassBreakdown:
    """Commit-hook observer accumulating per-class statistics."""

    def __init__(self, core: OutOfOrderCore):
        self.core = core
        self.counts: Dict[str, ClassCounts] = {
            name: ClassCounts() for name in CLASSES}
        self._previous_hook = core.on_commit
        core.on_commit = self._record

    def _record(self, op: CommittedOp, cycle: int) -> None:
        if self._previous_hook is not None:
            self._previous_hook(op, cycle)
        counts = self.counts[classify(op.inst)]
        counts.committed += 1
        counts.executions += op.exec_count
        if op.reuse_hit_full:
            counts.reused += 1
        if op.reuse_hit_addr:
            counts.addr_reused += 1
        if op.predicted:
            counts.predicted += 1
            if op.predicted_value == op.outcome.result:
                counts.predicted_correct += 1

    def detach(self) -> None:
        self.core.on_commit = self._previous_hook

    def report(self, title: str = "Per-class capture breakdown") -> Report:
        report = Report(
            title,
            headers=["class", "committed", "mix %", "reused %",
                     "addr reused %", "predicted ok %", "execs/inst"],
        )
        total = sum(c.committed for c in self.counts.values()) or 1
        for name in CLASSES:
            counts = self.counts[name]
            if not counts.committed:
                continue
            report.add_row(
                name,
                counts.committed,
                100.0 * counts.committed / total,
                100.0 * counts.rate(counts.reused),
                100.0 * counts.rate(counts.addr_reused),
                100.0 * counts.rate(counts.predicted_correct),
                counts.executions / counts.committed,
            )
        return report
