"""Per-phase wallclock profiling for the timing core (opt-in).

The profile lives outside :class:`~repro.metrics.stats.SimStats` on
purpose: ``SimStats.canonical_json`` is the golden-corpus regression
surface and must stay byte-identical across performance work, while
wallclock numbers differ on every run.  Attach a profile with
``core.enable_profiling()`` (or ``repro-sim --profile``) and the core
switches to an instrumented step that times each pipeline phase and
counts the event-queue / fast-forward activity.
"""

from __future__ import annotations

import time
from typing import Dict

# Pipeline phases in the order `step()` runs them.
PHASES = ("commit", "events", "issue", "dispatch", "fetch")


class CoreProfile:
    """Aggregated timing and event counters for one simulation run."""

    __slots__ = (
        "phase_seconds", "cycles_stepped", "cycles_skipped", "skips",
        "events_processed", "issue_queue_scanned", "started_at",
    )

    def __init__(self):
        self.phase_seconds: Dict[str, float] = {name: 0.0
                                                for name in PHASES}
        self.cycles_stepped = 0  # cycles the core actually stepped
        self.cycles_skipped = 0  # cycles jumped over by fast-forward
        self.skips = 0  # number of fast-forward jumps
        self.events_processed = 0
        self.issue_queue_scanned = 0  # queue entries examined by issue
        self.started_at = time.perf_counter()

    # -- accounting (called from the core's instrumented step) --------------------

    def time_phase(self, name: str, fn) -> None:
        start = time.perf_counter()
        fn()
        self.phase_seconds[name] += time.perf_counter() - start

    # -- reporting ----------------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        total = sum(self.phase_seconds.values())
        wall = time.perf_counter() - self.started_at
        stepped = self.cycles_stepped
        return {
            "phase_seconds": {name: round(self.phase_seconds[name], 6)
                              for name in PHASES},
            "phase_share": {name: round(self.phase_seconds[name]
                                        / (total or 1e-12), 4)
                            for name in PHASES},
            "step_seconds": round(total, 6),
            "wall_seconds": round(wall, 6),
            "cycles_stepped": stepped,
            "cycles_skipped": self.cycles_skipped,
            "skips": self.skips,
            "events_processed": self.events_processed,
            "issue_queue_scanned": self.issue_queue_scanned,
            "events_per_stepped_cycle": round(
                self.events_processed / (stepped or 1), 4),
            "scans_per_stepped_cycle": round(
                self.issue_queue_scanned / (stepped or 1), 4),
        }

    def report(self) -> str:
        """Human-readable profile block (``repro-sim --profile``).

        Four columns per phase: wallclock seconds, share of the phase
        total, share of the *whole* wall (includes run() overhead the
        phase timers never see), and microseconds per stepped cycle.
        """
        total = sum(self.phase_seconds.values()) or 1e-12
        wall = (time.perf_counter() - self.started_at) or 1e-12
        stepped = self.cycles_stepped or 1
        lines = ["phase      seconds   share   %wall  us/cycle"]
        for name in PHASES:
            seconds = self.phase_seconds[name]
            lines.append(f"{name:<9} {seconds:>8.3f}  "
                         f"{100 * seconds / total:>5.1f}%  "
                         f"{100 * seconds / wall:>5.1f}%  "
                         f"{1e6 * seconds / stepped:>8.2f}")
        simulated = self.cycles_stepped + self.cycles_skipped
        lines.append(f"cycles: {simulated} simulated = "
                     f"{self.cycles_stepped} stepped + "
                     f"{self.cycles_skipped} skipped "
                     f"({self.skips} fast-forwards)")
        lines.append(f"events processed: {self.events_processed} "
                     f"({self.events_processed / stepped:.2f}/stepped "
                     f"cycle)   issue-queue entries scanned: "
                     f"{self.issue_queue_scanned} "
                     f"({self.issue_queue_scanned / stepped:.2f}/stepped "
                     f"cycle)")
        return "\n".join(lines)
