"""Plain-text table rendering for the experiment harness.

Every experiment produces a :class:`Report` whose rows mirror the rows of
the corresponding table or figure in the paper, with paper-reported
values printed alongside measured values wherever the paper gives them.

This module also hosts the ``repro-report`` dashboard: it joins the run
manifests written by :class:`~repro.experiments.runner.ExperimentRunner`
with any interval time-series captured alongside them into one
provenance + behaviour view, rendered as text or minimal static HTML
(see ``docs/telemetry.md``).
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class Report:
    """A titled table plus optional notes, renderable as text."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        table = [list(map(_format_cell, self.headers))]
        table += [list(map(_format_cell, row)) for row in self.rows]
        widths = [max(len(row[col]) for row in table)
                  for col in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = table
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def render_html(self) -> str:
        """The same table as a static HTML fragment."""
        esc = _html.escape
        parts = [f"<h2>{esc(self.title)}</h2>", "<table>", "<tr>"]
        parts += [f"<th>{esc(_format_cell(h))}</th>" for h in self.headers]
        parts.append("</tr>")
        for row in self.rows:
            parts.append("<tr>" + "".join(
                f"<td>{esc(_format_cell(cell))}</td>" for cell in row)
                + "</tr>")
        parts.append("</table>")
        parts += [f"<p class='note'>note: {esc(note)}</p>"
                  for note in self.notes]
        return "\n".join(parts)


# --------------------------------------------------------------- repro-report --

_HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
th, td {{ border: 1px solid #999; padding: 0.25em 0.6em;
          text-align: right; font-variant-numeric: tabular-nums; }}
th {{ background: #eee; }}
td:first-child, th:first-child {{ text-align: left; }}
.note {{ color: #555; font-size: 0.9em; }}
</style></head><body>
<h1>{title}</h1>
{body}
</body></html>
"""


def _manifest_reports(manifests: List[dict]) -> List[Report]:
    """Provenance tables: one for runs, one for sweeps."""
    runs = [m for m in manifests if m.get("kind") == "run"]
    sweeps = [m for m in manifests if m.get("kind") == "sweep"]
    reports = []

    run_table = Report(
        title="Run manifests",
        headers=("cache key", "workload", "config", "cached",
                 "checkpoint", "wall s", "cycles", "ipc"))
    for m in sorted(runs, key=lambda m: m.get("cache_key", "")):
        stats = m.get("stats") or {}
        run_table.add_row(
            m.get("cache_key"), m.get("workload"), m.get("config_name"),
            bool(m.get("cache_hit")), m.get("checkpoint"),
            m.get("wallclock_seconds"), stats.get("cycles"),
            stats.get("ipc"))
    if runs:
        hosts = sorted({m.get("host") for m in runs if m.get("host")})
        versions = sorted({m.get("git_describe") for m in runs
                           if m.get("git_describe")})
        run_table.add_note(f"hosts: {', '.join(hosts) or 'unknown'}")
        if versions:
            run_table.add_note(f"git: {', '.join(versions)}")
    reports.append(run_table)

    if sweeps:
        sweep_table = Report(
            title="Sweep manifests",
            headers=("sweep", "runs", "simulated", "cached", "jobs",
                     "wall s"))
        for m in sorted(sweeps,
                        key=lambda m: m.get("created_unix") or 0):
            sweep_table.add_row(
                m.get("sweep_digest"), m.get("total_runs"),
                m.get("simulated"), m.get("cached"), m.get("jobs"),
                m.get("wallclock_seconds"))
        reports.append(sweep_table)
    return reports


def _timeseries_report(paths: List[Path]) -> Optional[Report]:
    """Behaviour summary: one row per captured interval time-series."""
    from ..telemetry import load_timeseries
    table = Report(
        title="Interval time-series",
        headers=("file", "workload", "config", "rows", "mean ipc",
                 "max rob", "squashes", "reuse hits", "vp misp"))
    for path in paths:
        try:
            series = load_timeseries(path)
        except (OSError, ValueError):
            continue
        ctx = series.context
        table.add_row(
            path.name, ctx.get("workload") or "-",
            ctx.get("config") or "-", len(series),
            series.summary("ipc")["mean"],
            series.summary("rob_occupancy")["max"],
            sum(series.column("squashes")),
            sum(series.column("reuse_hits")),
            sum(series.column("vp_mispredicted")))
    return table if table.rows else None


def _span_reports(path: Path) -> List[Report]:
    """Span-trace tables: the "where did the time go" phase breakdown
    and per-cell resource accounting (see repro.telemetry.spans)."""
    from ..telemetry.spans import PHASE_ORDER, load_spans
    try:
        records = load_spans(path)
    except (OSError, ValueError):
        return []
    jobs = [r for r in records if r.get("kind") == "job"
            and not (r.get("attrs") or {}).get("cache_hit")]
    phases = [r for r in records if r.get("kind") == "phase"]
    reports = []

    if phases:
        totals: dict = {}
        for record in phases:
            entry = totals.setdefault(record.get("name"),
                                      {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += record.get("duration_s") or 0.0
        grand = sum(entry["seconds"] for entry in totals.values())
        table = Report(
            title="Where did the time go (phase breakdown)",
            headers=("phase", "spans", "total s", "mean s", "share %"))
        order = {name: i for i, name in enumerate(PHASE_ORDER)}
        for name in sorted(totals,
                           key=lambda n: order.get(n, len(order))):
            entry = totals[name]
            table.add_row(
                name, entry["count"], round(entry["seconds"], 3),
                round(entry["seconds"] / entry["count"], 4),
                round(100.0 * entry["seconds"] / grand, 1) if grand
                else None)
        hosts = sorted({(r.get("attrs") or {}).get("host")
                        for r in jobs} - {None})
        if hosts:
            table.add_note(f"hosts: {', '.join(hosts)}")
        table.add_note("durations are per-process monotonic; spans "
                       "from parallel workers overlap in wallclock")
        reports.append(table)

    if jobs:
        table = Report(
            title="Per-cell resources (job spans)",
            headers=("cell", "wall s", "cpu user s", "cpu sys s",
                     "peak rss MB", "host"))
        for record in sorted(jobs, key=lambda r: r.get("key") or ""):
            attrs = record.get("attrs") or {}
            rss = attrs.get("rss_peak_kb")
            table.add_row(
                record.get("name") or record.get("key"),
                record.get("duration_s"),
                attrs.get("cpu_user_s"), attrs.get("cpu_sys_s"),
                round(rss / 1024.0, 1) if rss else None,
                attrs.get("host"))
        table.add_note("peak RSS is the process high-water mark at "
                       "span exit (ru_maxrss), not a per-cell delta")
        reports.append(table)
    return reports


def telemetry_dashboard(results_dir,
                        telemetry_dir=None) -> List[Report]:
    """Join manifests and time-series under *results_dir* into tables.

    *results_dir* is a result-cache directory (manifests are looked for
    in its ``manifests/`` subdirectory, then in the directory itself);
    *telemetry_dir* defaults to ``results_dir/telemetry``.  Either side
    may be missing — the dashboard renders whatever exists.
    """
    from ..telemetry import load_manifests
    results_dir = Path(results_dir)
    manifests = load_manifests(results_dir / "manifests")
    if not manifests:
        manifests = load_manifests(results_dir)
    reports = _manifest_reports(manifests) if manifests else []

    if telemetry_dir is None:
        telemetry_dir = results_dir / "telemetry"
    telemetry_dir = Path(telemetry_dir)
    if telemetry_dir.is_dir():
        paths = sorted(p for p in telemetry_dir.iterdir()
                       if p.suffix.lower() in (".jsonl", ".csv")
                       and ".trace." not in p.name
                       and p.name not in ("spans.jsonl",
                                          "progress.jsonl"))
        series_report = _timeseries_report(paths)
        if series_report is not None:
            reports.append(series_report)
        spans_path = telemetry_dir / "spans.jsonl"
        if spans_path.exists():
            reports.extend(_span_reports(spans_path))
    return reports


def render_dashboard_html(reports: List[Report],
                          title: str = "repro sweep report") -> str:
    body = "\n".join(report.render_html() for report in reports)
    return _HTML_PAGE.format(title=_html.escape(title), body=body)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-report``: render the manifest + telemetry dashboard."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Join sweep run manifests and interval time-series "
                    "into a provenance/behaviour dashboard")
    parser.add_argument("results", type=Path,
                        help="result-cache directory of a sweep "
                             "(manifests live in its manifests/ "
                             "subdirectory)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="directory of interval time-series files "
                             "(default: RESULTS/telemetry)")
    parser.add_argument("--html", type=Path, default=None, metavar="OUT",
                        help="also write the dashboard as a static "
                             "HTML page")
    parser.add_argument("--live", action="store_true",
                        help="tail the sweep's live progress instead "
                             "of rendering the dashboard (same view as "
                             "repro-top)")
    parser.add_argument("--interval", type=float, default=2.0,
                        metavar="SECONDS",
                        help="refresh period for --live (default 2s)")
    args = parser.parse_args(argv)

    if args.live:
        from ..telemetry.progress import follow
        telemetry = args.telemetry_dir if args.telemetry_dir is not None \
            else args.results / "telemetry"
        return follow(telemetry, interval=args.interval)

    reports = telemetry_dashboard(args.results, args.telemetry_dir)
    if not reports:
        print(f"no manifests or telemetry found under {args.results}")
        return 1
    print("\n\n".join(report.render() for report in reports))
    if args.html is not None:
        from ..util.locking import atomic_write_text
        atomic_write_text(args.html, render_dashboard_html(reports))
        print(f"\nwrote {args.html}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
