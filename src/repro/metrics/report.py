"""Plain-text table rendering for the experiment harness.

Every experiment produces a :class:`Report` whose rows mirror the rows of
the corresponding table or figure in the paper, with paper-reported
values printed alongside measured values wherever the paper gives them.

This module also hosts the ``repro-report`` dashboard: it joins the run
manifests written by :class:`~repro.experiments.runner.ExperimentRunner`
with any interval time-series captured alongside them into one
provenance + behaviour view, rendered as text or minimal static HTML
(see ``docs/telemetry.md``).
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class Report:
    """A titled table plus optional notes, renderable as text."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        table = [list(map(_format_cell, self.headers))]
        table += [list(map(_format_cell, row)) for row in self.rows]
        widths = [max(len(row[col]) for row in table)
                  for col in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = table
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

    def render_html(self) -> str:
        """The same table as a static HTML fragment."""
        esc = _html.escape
        parts = [f"<h2>{esc(self.title)}</h2>", "<table>", "<tr>"]
        parts += [f"<th>{esc(_format_cell(h))}</th>" for h in self.headers]
        parts.append("</tr>")
        for row in self.rows:
            parts.append("<tr>" + "".join(
                f"<td>{esc(_format_cell(cell))}</td>" for cell in row)
                + "</tr>")
        parts.append("</table>")
        parts += [f"<p class='note'>note: {esc(note)}</p>"
                  for note in self.notes]
        return "\n".join(parts)


# --------------------------------------------------------------- repro-report --

_HTML_PAGE = """<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{title}</title>
<style>
body {{ font-family: sans-serif; margin: 2em; }}
table {{ border-collapse: collapse; margin: 1em 0; }}
th, td {{ border: 1px solid #999; padding: 0.25em 0.6em;
          text-align: right; font-variant-numeric: tabular-nums; }}
th {{ background: #eee; }}
td:first-child, th:first-child {{ text-align: left; }}
.note {{ color: #555; font-size: 0.9em; }}
</style></head><body>
<h1>{title}</h1>
{body}
</body></html>
"""


def _manifest_reports(manifests: List[dict]) -> List[Report]:
    """Provenance tables: one for runs, one for sweeps."""
    runs = [m for m in manifests if m.get("kind") == "run"]
    sweeps = [m for m in manifests if m.get("kind") == "sweep"]
    reports = []

    run_table = Report(
        title="Run manifests",
        headers=("cache key", "workload", "config", "cached",
                 "checkpoint", "wall s", "cycles", "ipc"))
    for m in sorted(runs, key=lambda m: m.get("cache_key", "")):
        stats = m.get("stats") or {}
        run_table.add_row(
            m.get("cache_key"), m.get("workload"), m.get("config_name"),
            bool(m.get("cache_hit")), m.get("checkpoint"),
            m.get("wallclock_seconds"), stats.get("cycles"),
            stats.get("ipc"))
    if runs:
        hosts = sorted({m.get("host") for m in runs if m.get("host")})
        versions = sorted({m.get("git_describe") for m in runs
                           if m.get("git_describe")})
        run_table.add_note(f"hosts: {', '.join(hosts) or 'unknown'}")
        if versions:
            run_table.add_note(f"git: {', '.join(versions)}")
    reports.append(run_table)

    if sweeps:
        sweep_table = Report(
            title="Sweep manifests",
            headers=("sweep", "runs", "simulated", "cached", "jobs",
                     "wall s"))
        for m in sorted(sweeps,
                        key=lambda m: m.get("created_unix") or 0):
            sweep_table.add_row(
                m.get("sweep_digest"), m.get("total_runs"),
                m.get("simulated"), m.get("cached"), m.get("jobs"),
                m.get("wallclock_seconds"))
        reports.append(sweep_table)
    return reports


def _timeseries_report(paths: List[Path]) -> Optional[Report]:
    """Behaviour summary: one row per captured interval time-series."""
    from ..telemetry import load_timeseries
    table = Report(
        title="Interval time-series",
        headers=("file", "workload", "config", "rows", "mean ipc",
                 "max rob", "squashes", "reuse hits", "vp misp"))
    for path in paths:
        try:
            series = load_timeseries(path)
        except (OSError, ValueError):
            continue
        ctx = series.context
        table.add_row(
            path.name, ctx.get("workload") or "-",
            ctx.get("config") or "-", len(series),
            series.summary("ipc")["mean"],
            series.summary("rob_occupancy")["max"],
            sum(series.column("squashes")),
            sum(series.column("reuse_hits")),
            sum(series.column("vp_mispredicted")))
    return table if table.rows else None


def telemetry_dashboard(results_dir,
                        telemetry_dir=None) -> List[Report]:
    """Join manifests and time-series under *results_dir* into tables.

    *results_dir* is a result-cache directory (manifests are looked for
    in its ``manifests/`` subdirectory, then in the directory itself);
    *telemetry_dir* defaults to ``results_dir/telemetry``.  Either side
    may be missing — the dashboard renders whatever exists.
    """
    from ..telemetry import load_manifests
    results_dir = Path(results_dir)
    manifests = load_manifests(results_dir / "manifests")
    if not manifests:
        manifests = load_manifests(results_dir)
    reports = _manifest_reports(manifests) if manifests else []

    if telemetry_dir is None:
        telemetry_dir = results_dir / "telemetry"
    telemetry_dir = Path(telemetry_dir)
    if telemetry_dir.is_dir():
        paths = sorted(p for p in telemetry_dir.iterdir()
                       if p.suffix.lower() in (".jsonl", ".csv")
                       and ".trace." not in p.name)
        series_report = _timeseries_report(paths)
        if series_report is not None:
            reports.append(series_report)
    return reports


def render_dashboard_html(reports: List[Report],
                          title: str = "repro sweep report") -> str:
    body = "\n".join(report.render_html() for report in reports)
    return _HTML_PAGE.format(title=_html.escape(title), body=body)


def main(argv: Optional[List[str]] = None) -> int:
    """``repro-report``: render the manifest + telemetry dashboard."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Join sweep run manifests and interval time-series "
                    "into a provenance/behaviour dashboard")
    parser.add_argument("results", type=Path,
                        help="result-cache directory of a sweep "
                             "(manifests live in its manifests/ "
                             "subdirectory)")
    parser.add_argument("--telemetry-dir", type=Path, default=None,
                        help="directory of interval time-series files "
                             "(default: RESULTS/telemetry)")
    parser.add_argument("--html", type=Path, default=None, metavar="OUT",
                        help="also write the dashboard as a static "
                             "HTML page")
    args = parser.parse_args(argv)

    reports = telemetry_dashboard(args.results, args.telemetry_dir)
    if not reports:
        print(f"no manifests or telemetry found under {args.results}")
        return 1
    print("\n\n".join(report.render() for report in reports))
    if args.html is not None:
        args.html.write_text(render_dashboard_html(reports))
        print(f"\nwrote {args.html}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
