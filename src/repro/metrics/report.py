"""Plain-text table rendering for the experiment harness.

Every experiment produces a :class:`Report` whose rows mirror the rows of
the corresponding table or figure in the paper, with paper-reported
values printed alongside measured values wherever the paper gives them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _format_cell(value: Cell) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


@dataclass
class Report:
    """A titled table plus optional notes, renderable as text."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Cell]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Cell) -> None:
        self.rows.append(cells)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        table = [list(map(_format_cell, self.headers))]
        table += [list(map(_format_cell, row)) for row in self.rows]
        widths = [max(len(row[col]) for row in table)
                  for col in range(len(self.headers))]
        lines = [self.title, "=" * len(self.title)]
        header, *body = table
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(header, widths)))
        lines.append("  ".join("-" * width for width in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(width)
                                   for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
