"""Redundancy classification — the Figure 8 limit study (Section 4.3).

Every result-producing dynamic instruction is classified, per static
instruction, into:

* ``unique``    — produces this result value for the first time,
* ``repeated``  — produces a result it produced before,
* ``derivable`` — not repeated, but predictable from earlier results
  (the result falls on an established stride),
* ``unaccounted`` — could not be classified because the per-static-
  instruction buffer (10K instances, as in the paper) was full.

``redundancy = repeated + derivable`` — a rough upper bound on what value
prediction could capture (footnote 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..functional.simulator import ExecOutcome

MAX_INSTANCES = 10_000


@dataclass
class RedundancyCounts:
    """Dynamic-instruction category counters (Figure 8)."""

    unique: int = 0
    repeated: int = 0
    derivable: int = 0
    unaccounted: int = 0
    non_producing: int = 0  # branches/stores/nops: produce no result

    @property
    def producing(self) -> int:
        return self.unique + self.repeated + self.derivable + self.unaccounted

    @property
    def total(self) -> int:
        return self.producing + self.non_producing

    @property
    def redundant(self) -> int:
        """The paper's definition: repeated + derivable."""
        return self.repeated + self.derivable

    def fraction(self, count: int) -> float:
        return count / self.producing if self.producing else 0.0

    def as_percentages(self) -> Dict[str, float]:
        return {
            "unique": 100.0 * self.fraction(self.unique),
            "repeated": 100.0 * self.fraction(self.repeated),
            "derivable": 100.0 * self.fraction(self.derivable),
            "unaccounted": 100.0 * self.fraction(self.unaccounted),
        }


class _StaticEntry:
    """Per-static-instruction instance buffer with stride tracking."""

    __slots__ = ("values", "last_value", "stride", "full")

    def __init__(self):
        self.values: Set[int] = set()
        self.last_value: Optional[int] = None
        self.stride: Optional[int] = None
        self.full = False

    def classify(self, value: int, max_instances: int) -> str:
        if value in self.values:
            category = "repeated"
        elif (self.stride is not None and self.stride != 0
              and self.last_value is not None
              and value == (self.last_value + self.stride) & 0xFFFFFFFF):
            category = "derivable"
        elif self.full:
            category = "unaccounted"
        else:
            category = "unique"

        if value not in self.values:
            if len(self.values) < max_instances:
                self.values.add(value)
            else:
                self.full = True
        if self.last_value is not None:
            self.stride = (value - self.last_value) & 0xFFFFFFFF
        self.last_value = value
        return category


class RedundancyClassifier:
    """Streams :class:`ExecOutcome` records and classifies results."""

    def __init__(self, max_instances: int = MAX_INSTANCES):
        self.max_instances = max_instances
        self.counts = RedundancyCounts()
        self._static: Dict[int, _StaticEntry] = {}
        # Per-dynamic-instruction category of the most recent observation,
        # exposed for the reusability analyzer (Figure 9/10).
        self.last_category: Optional[str] = None

    def observe(self, outcome: ExecOutcome) -> Optional[str]:
        """Classify one dynamic instruction; returns its category."""
        if outcome.result is None:
            self.counts.non_producing += 1
            self.last_category = None
            return None
        entry = self._static.get(outcome.pc)
        if entry is None:
            entry = self._static[outcome.pc] = _StaticEntry()
        category = entry.classify(outcome.result, self.max_instances)
        setattr(self.counts, category, getattr(self.counts, category) + 1)
        self.last_category = category
        return category

    @property
    def static_instructions(self) -> int:
        return len(self._static)
