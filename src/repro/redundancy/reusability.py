"""Reusability estimate — Figures 9 and 10 of the paper (Section 4.3).

Of the *repeated* instructions, how many could IR actually reuse?  Two
things disqualify a repeated instruction:

1. **Inputs not ready** at reuse-test time.  The paper's model: an input
   is not ready if its producer is fewer than 50 dynamic instructions
   ahead, *unless the producer was itself reused* (Figure 9's three
   categories: producer reused / producer >= 50 ahead / producer < 50
   ahead).
2. **Different inputs**: the instruction repeats a result but with operand
   values never seen together before (e.g. logical ops, loads), so the
   operand-based reuse test cannot validate it.

``reusable = repeated - not_ready - different_inputs`` and Figure 10
reports ``reusable / (repeated + derivable)`` — 84..97% in the paper.
Loads additionally require that no store wrote their address since the
matching instance was recorded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..functional.simulator import ExecOutcome
from .classifier import MAX_INSTANCES, RedundancyClassifier

PRODUCER_DISTANCE = 50


@dataclass
class ReusabilityCounts:
    """Figure 9 (readiness buckets over repeated insts) + Figure 10."""

    repeated: int = 0
    producers_reused: int = 0  # inputs ready: producers were reused
    producers_far: int = 0  # inputs ready: producers >= 50 insts ahead
    producers_near: int = 0  # inputs NOT ready: producer < 50 ahead
    different_inputs: int = 0  # repeated result but unseen operand values
    memory_invalidated: int = 0  # load whose address was overwritten
    reusable: int = 0
    derivable: int = 0

    @property
    def redundant(self) -> int:
        return self.repeated + self.derivable

    def readiness_percentages(self) -> Dict[str, float]:
        if not self.repeated:
            return {"producers_reused": 0.0, "producers_far": 0.0,
                    "producers_near": 0.0}
        return {
            "producers_reused": 100.0 * self.producers_reused / self.repeated,
            "producers_far": 100.0 * self.producers_far / self.repeated,
            "producers_near": 100.0 * self.producers_near / self.repeated,
        }

    @property
    def reusable_fraction_of_redundant(self) -> float:
        """Figure 10's headline: 84-97% in the paper."""
        if not self.redundant:
            return 0.0
        return self.reusable / self.redundant


class _RegWriter:
    __slots__ = ("index", "reused")

    def __init__(self, index: int, reused: bool):
        self.index = index
        self.reused = reused


class ReusabilityAnalyzer:
    """Streams outcomes; layers the reuse test over the classifier."""

    def __init__(self, max_instances: int = MAX_INSTANCES,
                 producer_distance: int = PRODUCER_DISTANCE):
        self.classifier = RedundancyClassifier(max_instances)
        self.counts = ReusabilityCounts()
        self.producer_distance = producer_distance
        self.max_instances = max_instances
        self._index = 0
        self._reg_writers: Dict[int, _RegWriter] = {}
        # Per-static-instruction set of (operand signature) seen before.
        self._operand_sigs: Dict[int, Set[Tuple[int, ...]]] = {}
        # Memory write clock per 4-byte block, and per-static-load the
        # time its matching instance was recorded.
        self._mem_clock: Dict[int, int] = {}
        self._load_instances: Dict[int, Dict[Tuple[int, ...], int]] = {}

    def observe(self, outcome: ExecOutcome) -> None:
        self._index += 1
        category = self.classifier.observe(outcome)
        inst = outcome.inst

        if inst.opcode.is_store and outcome.mem_addr is not None:
            first = outcome.mem_addr >> 2
            last = (outcome.mem_addr + inst.opcode.mem_bytes - 1) >> 2
            for block in range(first, last + 1):
                self._mem_clock[block] = self._index

        reused = False
        if category == "repeated":
            self.counts.repeated += 1
            reused = self._check_reusable(outcome)
            if reused:
                self.counts.reusable += 1
        elif category == "derivable":
            self.counts.derivable += 1

        self._record_instance(outcome)
        for reg, _ in outcome.writes:
            self._reg_writers[reg] = _RegWriter(self._index, reused)

    def _record_instance(self, outcome: ExecOutcome) -> None:
        """Record this occurrence's operand signature (and, for loads,
        the instance time) for future reuse tests.  Recording happens for
        EVERY dynamic instance — an instruction whose first occurrence
        produced a unique result still seeds the test for its repeats."""
        inst = outcome.inst
        if not inst.opcode.writes_hi_lo and outcome.result is None \
                and not inst.opcode.is_store:
            return
        signature = self._operand_signature(outcome)
        sigs = self._operand_sigs.setdefault(inst.pc, set())
        if len(sigs) < self.max_instances:
            sigs.add(signature)
        if inst.opcode.is_load:
            instances = self._load_instances.setdefault(inst.pc, {})
            if len(instances) < self.max_instances \
                    or signature in instances:
                instances[signature] = self._index

    def _operand_signature(self, outcome: ExecOutcome) -> Tuple[int, ...]:
        return (outcome.operand_a, outcome.operand_b)

    def _check_reusable(self, outcome: ExecOutcome) -> bool:
        inst = outcome.inst
        # -- input readiness (Figure 9) ---------------------------------------
        ready = True
        any_near = False
        all_reused = bool(inst.src_regs)
        for reg in inst.src_regs:
            writer = self._reg_writers.get(reg)
            if writer is None:
                all_reused = False
                continue
            if writer.reused:
                continue
            all_reused = False
            if self._index - writer.index < self.producer_distance:
                any_near = True
        if any_near:
            self.counts.producers_near += 1
            ready = False
        elif all_reused and inst.src_regs:
            self.counts.producers_reused += 1
        else:
            self.counts.producers_far += 1

        # -- operand test (against instances recorded so far) ------------------
        signature = self._operand_signature(outcome)
        seen = signature in self._operand_sigs.get(inst.pc, ())
        if not seen:
            if ready:
                self.counts.different_inputs += 1
            return False
        if not ready:
            return False

        # -- memory validity for loads ----------------------------------------
        if inst.opcode.is_load:
            recorded = self._load_instances.get(inst.pc, {}).get(signature)
            if recorded is None:
                return False
            first = outcome.mem_addr >> 2
            last = (outcome.mem_addr + inst.opcode.mem_bytes - 1) >> 2
            for block in range(first, last + 1):
                if self._mem_clock.get(block, 0) > recorded:
                    self.counts.memory_invalidated += 1
                    return False
        return True


def analyze_stream(outcomes) -> ReusabilityAnalyzer:
    """Run the full Figure 8/9/10 analysis over an outcome stream."""
    analyzer = ReusabilityAnalyzer()
    for outcome in outcomes:
        analyzer.observe(outcome)
    return analyzer
