"""Redundancy limit studies (Figures 8, 9, 10 of the paper)."""

from .classifier import RedundancyClassifier, RedundancyCounts, MAX_INSTANCES
from .reusability import (
    PRODUCER_DISTANCE,
    ReusabilityAnalyzer,
    ReusabilityCounts,
    analyze_stream,
)

__all__ = [
    "RedundancyClassifier",
    "RedundancyCounts",
    "MAX_INSTANCES",
    "ReusabilityAnalyzer",
    "ReusabilityCounts",
    "PRODUCER_DISTANCE",
    "analyze_stream",
]
