"""Advisory per-file locks and the atomic-write path for on-disk stores.

Three on-disk stores are written concurrently by ``--jobs N`` worker
processes: the experiment result cache
(:class:`~repro.experiments.runner.ExperimentRunner`), the warm-state
checkpoint store (:class:`~repro.functional.checkpoint.CheckpointStore`)
and the run-manifest directory (:mod:`repro.telemetry.manifest`).  In
all of them, racing producers may try to create the same entry (e.g.
the base run every speedup divides by, or the shared warm-up of a
workload's first two configs).  Each key gets a sidecar ``<key>.lock``
file; a producer holds the lock while it re-checks the store and
(re-)produces, so an entry is never computed twice and a reader can
never observe a half-written file.

On POSIX the lock is ``fcntl.flock`` (kernel-mediated, crash-safe: the
lock dies with the process).  Where ``fcntl`` is unavailable the
fallback is an ``O_CREAT | O_EXCL`` spin lock with a stale-lock timeout.

:func:`atomic_write_bytes` / :func:`atomic_write_text` are the one
sanctioned write path for those stores (tempfile in the destination
directory + ``os.replace``, temp file unlinked on any failure).  The
``atomic-write`` lint rule (:mod:`repro.analysis.rules`) flags any
hand-rolled ``tempfile``/``os.replace`` use outside this module, so the
discipline cannot silently fork.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
import time
from pathlib import Path
from typing import Union

try:  # POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

# A fallback lock file older than this is presumed leaked by a dead
# process and is broken.  flock locks never go stale, so this only
# matters on platforms without fcntl.
STALE_LOCK_SECONDS = 600.0


# repro-flow: guard -- holding the flock is what lock-discipline requires
class FileLock:
    """Context manager: exclusive advisory lock on *path*.

    Reentrant within a process is NOT supported (and not needed: the
    runner acquires one lock per cache key, once).
    """

    def __init__(self, path: Path, poll_interval: float = 0.02) -> None:
        self.path = Path(path)
        self.poll_interval = poll_interval
        self._fd: int | None = None

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is not None:
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            fcntl.flock(self._fd, fcntl.LOCK_EX)
            return
        self._acquire_spin()  # pragma: no cover - non-POSIX fallback

    def _acquire_spin(self) -> None:  # pragma: no cover - non-POSIX
        while True:
            try:
                self._fd = os.open(self.path,
                                   os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644)
                os.write(self._fd, str(os.getpid()).encode())
                return
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > STALE_LOCK_SECONDS:
                        self.path.unlink()
                        continue
                except OSError:
                    pass  # raced with the holder's release
                time.sleep(self.poll_interval)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            if fcntl is not None:
                fcntl.flock(self._fd, fcntl.LOCK_UN)
            else:  # pragma: no cover - non-POSIX fallback
                self.path.unlink()
        finally:
            os.close(self._fd)
            self._fd = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


# repro-flow: trusted-write -- this IS the sanctioned atomic write path
def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write *data* to *path* so readers never observe a partial file.

    The bytes land in a ``.tmp`` sibling in the destination directory
    (same filesystem, so the final ``os.replace`` is atomic) and the
    temp file is removed on any failure.  Concurrent writers of the
    same *path* are safe: the last replace wins and every intermediate
    state is a complete file.  Parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent),
                                    prefix=f".{path.stem}.",
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


# repro-flow: trusted-write -- text front-end of the atomic write path
def atomic_write_text(path: Union[str, Path], text: str,
                      encoding: str = "utf-8") -> None:
    """Text-mode convenience wrapper over :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode(encoding))


# repro-flow: trusted-write -- O_APPEND single-write is torn-line safe
def append_line(path: Union[str, Path], line: str,
                encoding: str = "utf-8") -> None:
    """Append one newline-terminated record to a shared log file.

    The sanctioned write path for *append-only* telemetry logs (the
    sweep progress protocol): ``O_APPEND`` plus a single ``os.write``
    of the whole record, so concurrent worker processes interleave
    whole lines rather than bytes.  POSIX only guarantees that for
    writes up to ``PIPE_BUF`` (>= 512 bytes, 4096 on Linux) — progress
    records are far smaller, and a reader tolerates a torn tail line
    anyway (:func:`repro.telemetry.progress.read_progress` skips
    unparseable lines).  Unlike :func:`atomic_write_bytes`, an append
    must never replace the file: other writers hold the same inode
    open.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = line.encode(encoding)
    if not data.endswith(b"\n"):
        data += b"\n"
    fd = os.open(str(path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)
