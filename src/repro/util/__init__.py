"""Infrastructure shared across layers (locks, atomic writes, canonical JSON)."""

from .locking import FileLock, atomic_write_bytes, atomic_write_text
from .serial import canonical_dumps, validate_canonical

__all__ = [
    "FileLock",
    "atomic_write_bytes",
    "atomic_write_text",
    "canonical_dumps",
    "validate_canonical",
]
