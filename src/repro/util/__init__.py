"""Infrastructure shared across layers (locks, atomic file helpers)."""

from .locking import FileLock

__all__ = ["FileLock"]
