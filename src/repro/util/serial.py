"""Canonical JSON: the one serializer behind byte-identity contracts.

``canonical_dumps`` is ``json.dumps(..., sort_keys=True)`` plus the
checks that make "sorted keys" an *enforced* invariant instead of a
hope:

* every mapping's keys must be homogeneous — all ``str`` or all ``int``
  (``sort_keys`` over mixed key types raises deep inside ``json`` with
  no context; worse, ``True``/``1`` collide after stringification and
  silently drop data);
* non-finite floats are rejected (``NaN``/``Infinity`` are not JSON and
  ``NaN != NaN`` breaks the equality checks the determinism tests use);
* only JSON-representable types are accepted — no default hook, so an
  object can never serialize differently between writer versions.

Int keys sort *numerically* (json's behaviour), which is part of the
canonical byte format: ``SimStats.exec_count_histogram`` has serialized
that way since the first cache version, and changing it would orphan
every cache and golden file.

Used by :meth:`repro.metrics.stats.SimStats.canonical_json` (the result
cache and golden corpus bytes) and :func:`repro.telemetry.manifest
.write_manifest`; the ``sorted-serialization`` lint rule keeps ad-hoc
``json.dumps`` calls from bypassing it.
"""

from __future__ import annotations

import json
import math
from typing import Optional

_SCALARS = (str, int, float, bool, type(None))


def validate_canonical(payload: object, context: str = "payload") -> None:
    """Raise ``ValueError`` unless *payload* serializes canonically.

    Checks, recursively: JSON-representable types only, homogeneous
    (sortable) dict keys, finite floats.  *context* names the offending
    location in error messages.
    """
    if isinstance(payload, dict):
        key_types = {type(key) for key in payload}
        # bool is an int subclass: True would stringify to "true"...
        # except json renders bool keys as "true"/"false" while sorting
        # them as ints — ban them outright.
        if any(issubclass(t, bool) for t in key_types):
            raise ValueError(f"{context}: bool dict keys do not "
                             "serialize canonically")
        if not all(issubclass(t, (str, int)) for t in key_types):
            bad = sorted(t.__name__ for t in key_types
                         if not issubclass(t, (str, int)))
            raise ValueError(f"{context}: unsortable dict key type(s) "
                             f"{', '.join(bad)}")
        if len({str if issubclass(t, str) else int
                for t in key_types}) > 1:
            raise ValueError(
                f"{context}: mixed str/int dict keys — key order "
                "would be undefined under sort_keys")
        for key, value in payload.items():
            validate_canonical(value, f"{context}[{key!r}]")
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            validate_canonical(value, f"{context}[{index}]")
    elif isinstance(payload, float):
        if not math.isfinite(payload):
            raise ValueError(f"{context}: non-finite float {payload!r} "
                             "is not canonical JSON")
    elif not isinstance(payload, _SCALARS):
        raise ValueError(f"{context}: {type(payload).__name__} is not "
                         "JSON-representable (no default hook by "
                         "design)")


def canonical_dumps(payload: object, indent: Optional[int] = 1) -> str:
    """Serialize *payload* deterministically (validated + sorted keys).

    The byte format of the result cache, golden corpus and manifests:
    ``indent=1``, sorted keys, explicit validation up front so a
    non-canonical payload fails loudly at the writer, never at a
    reader diffing two caches.
    """
    validate_canonical(payload)
    return json.dumps(payload, indent=indent, sort_keys=True,
                      allow_nan=False)
