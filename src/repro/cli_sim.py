"""``repro-sim``: run an assembly file (or workload) through the machine.

A downstream user's entry point for quick studies::

    repro-sim program.s                       # base machine
    repro-sim program.s --config vp ir hybrid # compare techniques
    repro-sim --workload compress --config ir --breakdown
    repro-sim program.s --config ir --trace 16

Prints cycles/IPC/capture rates per configuration, optionally followed by
a per-class breakdown (see :mod:`repro.metrics.breakdown`) and a pipeline
trace of the first committed instructions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .backend import get_backend
from .functional.checkpoint import CheckpointStore
from .isa import assemble
from .metrics.breakdown import ClassBreakdown
from .uarch.config import (
    IRValidation,
    MachineConfig,
    PredictorKind,
    base_config,
    hybrid_config,
    ir_config,
    vp_config,
)
from .uarch.core import OutOfOrderCore
from .uarch.trace import PipelineTracer
from .workloads import get_workload, workload_names

CONFIG_FACTORIES = {
    "base": base_config,
    "ir": ir_config,
    "ir-late": lambda: ir_config(IRValidation.LATE),
    "vp": vp_config,
    "vp-lvp": lambda: vp_config(PredictorKind.LAST_VALUE),
    "vp-stride": lambda: vp_config(PredictorKind.STRIDE),
    "vp-fcm": lambda: vp_config(PredictorKind.FCM),
    "vp-select": lambda: vp_config(PredictorKind.HYBRID_SELECT),
    "hybrid": hybrid_config,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Simulate an assembly program on the Sodani & Sohi "
                    "(MICRO 1998) machine model")
    parser.add_argument("source", nargs="?", type=Path,
                        help="assembly file (omit when using --workload)")
    parser.add_argument("--workload", metavar="NAME",
                        help="run a bundled SPECint95 analog "
                             f"({', '.join(sorted(workload_names()))}) "
                             "or a generated 'gen-...' workload "
                             "(see repro-gen)")
    parser.add_argument("--variant", default="ref",
                        help="workload input variant (ref/train)")
    parser.add_argument("--config", nargs="+", default=["base"],
                        choices=sorted(CONFIG_FACTORIES),
                        help="machine configuration(s) to run")
    parser.add_argument("--instructions", type=int, default=50_000,
                        help="committed-instruction budget")
    parser.add_argument("--max-cycles", type=int, default=2_000_000)
    parser.add_argument("--skip", type=int, default=None,
                        help="functional fast-forward before timing "
                             "(defaults to the workload's skip, or 0)")
    parser.add_argument("--breakdown", action="store_true",
                        help="print the per-class capture breakdown")
    parser.add_argument("--trace", type=int, metavar="N", default=0,
                        help="print a pipeline trace of N committed "
                             "instructions (steady state)")
    parser.add_argument("--verify", action="store_true",
                        help="verify every commit against the functional "
                             "simulator")
    parser.add_argument("--profile", action="store_true",
                        help="print per-phase wallclock profile and "
                             "event-queue counters after each run")
    parser.add_argument("--telemetry-out", type=Path, default=None,
                        metavar="FILE",
                        help="write an interval time-series per config "
                             "(.jsonl or .csv by suffix; multiple "
                             "configs insert the config name before "
                             "the suffix)")
    parser.add_argument("--telemetry-interval", type=int, default=None,
                        metavar="CYCLES",
                        help="sampling period of --telemetry-out "
                             "(default 500 cycles)")
    parser.add_argument("--trace-out", type=Path, default=None,
                        metavar="FILE",
                        help="write the structured event trace per "
                             "config (JSONL; inspect with repro-trace)")
    parser.add_argument("--trace-buffer", type=int, default=None,
                        metavar="N",
                        help="event ring-buffer capacity for "
                             "--trace-out (default 65536; oldest "
                             "events drop first)")
    parser.add_argument("--spans-out", type=Path, default=None,
                        metavar="FILE",
                        help="write a hierarchical span trace of this "
                             "invocation (root -> per-config job -> "
                             "warm-restore/simulate phases, with "
                             "per-job CPU/RSS accounting; canonical "
                             "JSONL, see docs/telemetry.md)")
    parser.add_argument("--checkpoint-dir", type=Path, default=None,
                        help="persist warm-state checkpoints here so "
                             "later invocations skip the warm-up "
                             "(default: share within this invocation "
                             "only)")
    parser.add_argument("--no-checkpoint", action="store_true",
                        help="re-execute the warm-up skip for every "
                             "configuration")
    return parser


def _per_config_path(path: Path, config_name: str,
                     many: bool) -> Path:
    """``out.jsonl`` -> ``out.<config>.jsonl`` when several configs run."""
    if not many:
        return path
    return path.with_name(f"{path.stem}.{config_name}{path.suffix}")


def _load_program(args):
    if args.workload:
        try:
            spec = get_workload(args.workload)
        except (KeyError, ValueError) as exc:
            raise SystemExit(
                f"unknown workload {args.workload!r} "
                f"(bundled: {', '.join(sorted(workload_names()))}; "
                f"or a canonical 'gen-...' name): {exc}")
        skip = args.skip if args.skip is not None \
            else spec.skip_instructions
        label = f"{args.workload} ({args.variant})"
        return (lambda: spec.program(args.variant)), skip, label
    if args.source is None:
        raise SystemExit("provide an assembly file or --workload")
    text = args.source.read_text()
    return (lambda: assemble(text)), (args.skip or 0), str(args.source)


def main(argv: Optional[List[str]] = None) -> int:
    import contextlib
    import time

    args = build_parser().parse_args(argv)
    program_fn, skip, label = _load_program(args)

    # Optional span tracing (repro.telemetry.spans): repro-sim has no
    # result cache, so job keys are synthesized from the invocation
    # (workload/source, config, budget) — still content-derived, so a
    # repeated invocation produces identical span identity lines.
    recorder = parent = trace_id = None
    job_keys = {}
    if args.spans_out is not None:
        from .telemetry.spans import SpanRecorder, span_id, sweep_digest
        recorder = SpanRecorder()
        slug = args.workload if args.workload else args.source.stem
        job_keys = {name: f"sim-{slug}-{name}-i{args.instructions}"
                    for name in args.config}
        digest = sweep_digest(list(job_keys.values()))
        parent = span_id("sweep", digest)
        trace_id = digest
    started = time.perf_counter()

    def phase(key, name, job_parent):
        if recorder is None:
            return contextlib.nullcontext({})
        return recorder.measure("phase", key, name, parent=job_parent,
                                trace=parent)

    # One program image for every configuration (it is immutable), and
    # one warm-up: each config restores the captured warm state instead
    # of re-executing the skip (identical statistics either way).
    # Assembly is shared, so "decode" attaches at the root rather than
    # to any one config's job.
    with phase(trace_id, "decode", parent):
        program = program_fn()
    checkpoints = None if args.no_checkpoint \
        else CheckpointStore(args.checkpoint_dir)

    print(f"program: {label}   skip: {skip}   "
          f"budget: {args.instructions} instructions")
    print()
    header = (f"{'config':<22} {'cycles':>9} {'IPC':>6} {'speedup':>8} "
              f"{'bp%':>6} {'reuse%':>7} {'pred%':>6}")
    print(header)
    print("-" * len(header))

    base_cycles = None
    extras = []
    for name in args.config:
        config = CONFIG_FACTORIES[name]()
        if args.verify:
            import dataclasses
            config = dataclasses.replace(config, verify_commits=True)
        core = OutOfOrderCore(config, program)
        if args.workload:
            # Display-only (telemetry context, stats header); cached
            # result bytes never pass through this path.
            core.stats.workload_name = args.workload
        breakdown = ClassBreakdown(core) if args.breakdown else None
        tracer = None
        if args.trace:
            tracer = PipelineTracer(core, limit=args.trace,
                                    start_cycle=200)
        profile = core.enable_profiling() if args.profile else None
        sink = None
        if args.telemetry_out or args.trace_out:
            sink = core.enable_telemetry(
                interval=args.telemetry_interval,
                trace_capacity=args.trace_buffer,
                events=args.trace_out is not None)
        if recorder is not None:
            from .telemetry.spans import span_id
            job_key = job_keys[name]
            job_parent = span_id("job", job_key)
            job = recorder.measure("job", job_key,
                                   f"{label}/{config.name}",
                                   parent=parent, trace=trace_id,
                                   rusage=True)
        else:
            job_key = job_parent = None
            job = contextlib.nullcontext({})
        with job as job_attrs:
            with phase(job_key, "warm-restore", job_parent) as warm:
                if checkpoints is not None:
                    core.restore_warm(checkpoints.get(program, skip))
                    warm["checkpoint"] = checkpoints.last_source
                else:
                    core.skip(skip)
                    warm["checkpoint"] = "disabled"
            with phase(job_key, "simulate", job_parent):
                stats = core.run(max_cycles=args.max_cycles,
                                 max_instructions=args.instructions)
            job_attrs.update({"config": config.name,
                              "committed": stats.committed,
                              "cycles": stats.cycles})
        if base_cycles is None:
            base_cycles = stats.cycles
        print(f"{config.name:<22} {stats.cycles:>9} {stats.ipc:>6.2f} "
              f"{base_cycles / stats.cycles:>7.2f}x "
              f"{100 * stats.branch_prediction_rate:>5.1f} "
              f"{100 * stats.ir_result_rate:>6.1f} "
              f"{100 * stats.vp_result_rate:>5.1f}")
        if breakdown is not None:
            extras.append(breakdown.report(
                f"Per-class breakdown: {config.name}"))
        if tracer is not None:
            extras.append(f"Pipeline trace: {config.name}\n"
                          + tracer.render())
        if profile is not None:
            extras.append(f"Profile: {config.name} "
                          f"[{get_backend().summary()}]\n"
                          + profile.report())
        if sink is not None:
            many = len(args.config) > 1
            if args.telemetry_out:
                out = _per_config_path(args.telemetry_out, config.name,
                                       many)
                sink.write_timeseries(out)
                extras.append(f"telemetry: {len(sink.series)} interval "
                              f"rows -> {out}")
            if args.trace_out:
                out = _per_config_path(args.trace_out, config.name, many)
                sink.write_trace(out, program=label)
                trace = sink.trace
                extras.append(f"trace: {len(trace)} events kept "
                              f"({trace.dropped} dropped) -> {out}")
    if recorder is not None:
        root = recorder.point(
            "sweep", trace_id, "repro-sim", trace=trace_id,
            attrs={"total": len(args.config),
                   "simulated": len(args.config), "cached": 0,
                   "jobs": 1})
        root["t_start"] = recorder.rel(started)
        root["duration_s"] = round(time.perf_counter() - started, 6)
        recorder.write(args.spans_out)
        extras.append(f"spans: {len(recorder.records)} records -> "
                      f"{args.spans_out}")
    for extra in extras:
        print()
        print(extra.render() if hasattr(extra, "render") else extra)
    return 0


if __name__ == "__main__":
    sys.exit(main())
