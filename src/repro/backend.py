"""Runtime selection between the interpreted and compiled kernel.

The simulator hot path lives in ``repro.uarch._kernel`` — a module set
written to compile under **mypyc** (see ``setup.py``:
``REPRO_BUILD_COMPILED=1 pip install -e .`` or
``pip install -e .[compiled]``).  When the extension is built, the
kernel modules import as C extensions under their canonical names; when
it is not, the same ``.py`` sources import interpreted.  This module is
the one place that looks, decides and reports:

* ``get_backend()`` resolves the process-wide active backend from the
  ``REPRO_BACKEND`` environment variable (``auto`` | ``python`` |
  ``compiled``, default ``auto``) on first use and caches it;
* ``auto`` prefers the compiled extension and falls back to the
  interpreted kernel with a single ``logging`` note (silent by
  default);
* ``compiled`` **fails loudly** when the extension is absent — an
  explicit request must never degrade silently;
* ``python`` always yields the interpreted sources, loading them under
  alias module names when a built extension shadows them — which is
  what lets the dual-backend tests run both implementations in one
  process;
* the backend choice is *reported* (``repro-sim --profile``, provenance
  manifests) but never keyed: both backends are pinned byte-identical
  by the golden corpus, so results caches must hit across backends
  (``tests/backend/`` asserts cache files are byte-identical).

``activate()`` / ``use()`` switch the active backend programmatically;
they exist for tests and tools, not for the middle of a simulation —
cores bind their kernel classes at construction time.
"""

from __future__ import annotations

import contextlib
import importlib
import importlib.machinery
import importlib.util
import logging
import os
import sys
from pathlib import Path
from types import ModuleType
from typing import Dict, Iterator, Optional, Tuple

ENV_VAR = "REPRO_BACKEND"
BACKEND_CHOICES = ("auto", "python", "compiled")

_KERNEL_PKG = "repro.uarch._kernel"
_logger = logging.getLogger("repro.backend")


class BackendError(RuntimeError):
    """An explicit backend request that cannot be satisfied."""


class Backend:
    """The resolved kernel implementation the process is running on.

    ``entry_pool`` / ``events`` / ``ffexec`` are the kernel modules of
    this backend; consumers take classes and functions off them instead
    of importing ``repro.uarch._kernel.*`` directly.
    """

    def __init__(self, name: str, requested: str,
                 entry_pool: ModuleType, events: ModuleType,
                 ffexec: ModuleType, extension_version: str,
                 fallback_reason: str = ""):
        self.name = name  # "python" | "compiled"
        self.requested = requested  # what the env/caller asked for
        self.entry_pool = entry_pool
        self.events = events
        self.ffexec = ffexec
        #: Human-readable extension identity ("" on the python backend);
        #: recorded in provenance manifests next to the backend name.
        self.extension_version = extension_version
        self.kernel_version = _kernel_package().KERNEL_VERSION
        #: Why an ``auto`` request did not get the compiled kernel.
        self.fallback_reason = fallback_reason

    @property
    def compiled(self) -> bool:
        return self.name == "compiled"

    def summary(self) -> str:
        """One-line identity for --profile output and logs."""
        if self.compiled:
            return f"backend=compiled ({self.extension_version})"
        return "backend=python"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Backend {self.name} (requested {self.requested})>"


def _kernel_package() -> ModuleType:
    """The ``repro.uarch._kernel`` package, imported on first use.

    Deferred (not a module-level import) because importing the kernel
    package initialises ``repro.uarch`` — whose core imports this
    module right back; at call time both are fully initialised.
    """
    return importlib.import_module(_KERNEL_PKG)


def _module_is_compiled(module: ModuleType) -> bool:
    """True when *module* imported as a built extension, not source."""
    filename = getattr(module, "__file__", None)
    return filename is not None and not filename.endswith(".py")


def _import_canonical() -> Dict[str, ModuleType]:
    """The kernel modules under their canonical import names."""
    return {stem: importlib.import_module(f"{_KERNEL_PKG}.{stem}")
            for stem in _kernel_package().KERNEL_MODULES}


def _import_source(stem: str) -> ModuleType:
    """Load the interpreted ``.py`` kernel module under an alias name.

    Used only when a built extension shadows the canonical name: the
    alias (``repro.uarch._kernel._py_<stem>``) keeps the module's
    package context, so its relative imports still resolve, while the
    canonical name keeps pointing at the extension.
    """
    fullname = f"{_KERNEL_PKG}._py_{stem}"
    cached = sys.modules.get(fullname)
    if cached is not None:
        return cached
    package = importlib.import_module(_KERNEL_PKG)
    package_file = getattr(package, "__file__", None)
    if package_file is None:  # pragma: no cover - namespace-package guard
        raise BackendError(f"{_KERNEL_PKG} has no source directory")
    source = Path(package_file).with_name(f"{stem}.py")
    loader = importlib.machinery.SourceFileLoader(fullname, str(source))
    spec = importlib.util.spec_from_loader(fullname, loader)
    if spec is None:  # pragma: no cover - spec_from_loader never fails here
        raise BackendError(f"cannot load interpreted kernel from {source}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[fullname] = module
    loader.exec_module(module)
    return module


def resolve_backend(requested: str) -> Backend:
    """Resolve *requested* (``auto``/``python``/``compiled``) fresh.

    Raises :class:`BackendError` on an unknown name, on an explicit
    ``compiled`` request without a built extension, and on a partial
    build (some kernel modules compiled, some not — a broken install
    that must never be half-used).
    """
    if requested not in BACKEND_CHOICES:
        raise BackendError(
            f"unknown {ENV_VAR} value {requested!r}: "
            f"choose one of {', '.join(BACKEND_CHOICES)}")
    canonical = _import_canonical()
    compiled_flags = [_module_is_compiled(m) for m in canonical.values()]
    if any(compiled_flags) and not all(compiled_flags):
        broken = ", ".join(
            stem for stem, is_c in zip(canonical, compiled_flags)
            if not is_c)
        raise BackendError(
            f"partial compiled kernel: {broken} imported as source while "
            f"other kernel modules are built extensions — rebuild with "
            f"REPRO_BUILD_COMPILED=1 pip install -e . (or remove the "
            f"stale extension files)")
    extension_built = all(compiled_flags) and bool(compiled_flags)

    if requested == "compiled" and not extension_built:
        raise BackendError(
            "REPRO_BACKEND=compiled but the compiled kernel extension is "
            "not built.  Build it with:  REPRO_BUILD_COMPILED=1 "
            "pip install -e .  (or: pip install -e .[compiled]), or use "
            "REPRO_BACKEND=auto to fall back to the interpreted kernel.")

    fallback_reason = ""
    if requested == "auto" and not extension_built:
        fallback_reason = "compiled kernel extension not built"
        _logger.info(
            "backend auto-selection: %s; running the interpreted kernel",
            fallback_reason)

    if requested != "python" and extension_built:
        version = ("mypyc kernel-v"
                   f"{_kernel_package().KERNEL_VERSION}")
        return Backend("compiled", requested,
                       canonical["entry_pool"], canonical["events"],
                       canonical["ffexec"], version)
    if extension_built:
        # Explicit python request with an extension present: load the
        # interpreted sources beside it under alias names.
        modules = {stem: _import_source(stem)
                   for stem in canonical}
    else:
        modules = canonical
    return Backend("python", requested,
                   modules["entry_pool"], modules["events"],
                   modules["ffexec"], "", fallback_reason)


def compiled_available() -> bool:
    """True when the built kernel extension is importable."""
    return all(_module_is_compiled(m)
               for m in _import_canonical().values())


def available_backends() -> Tuple[str, ...]:
    """The backend names that can actually run in this environment."""
    if compiled_available():
        return ("python", "compiled")
    return ("python",)


_active: Optional[Backend] = None


def get_backend() -> Backend:
    """The process-wide active backend (resolved once, then cached).

    The first call reads ``REPRO_BACKEND`` (default ``auto``); later
    env changes are ignored — switch programmatically with
    :func:`activate` / :func:`use` instead.
    """
    global _active
    if _active is None:
        _active = resolve_backend(os.environ.get(ENV_VAR, "auto"))
    return _active


def activate(requested: str) -> Backend:
    """Make *requested* the active backend and return it."""
    global _active
    _active = resolve_backend(requested)
    return _active


@contextlib.contextmanager
def use(requested: str) -> Iterator[Backend]:
    """Context manager: *requested* active inside, previous restored.

    The previous backend object (not just its name) is restored, so a
    never-resolved state stays never-resolved.
    """
    global _active
    previous = _active
    try:
        yield activate(requested)
    finally:
        _active = previous
