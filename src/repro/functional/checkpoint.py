"""Content-addressed warm-state checkpoint store.

Every timing simulation of a workload starts with the same purely
functional warm-up skip, and the sweep runs ~19 configurations per
workload: the warm-up is identical for every one of them, since skip
executes architecturally with no machine configuration in sight.  This
module captures the complete architectural state after a warm-up once —
registers, memory image, PC, executed-instruction count — and lets
every later configuration, worker process or CLI invocation *restore* it
instead of re-executing the warm-up.

Checkpoints are content-addressed: the key is a digest of

* the program's :meth:`~repro.isa.program.Program.canonical_digest`
  (any semantic edit to a workload invalidates its checkpoints),
* the requested skip count,
* :data:`STATE_FORMAT_VERSION` (bumping it orphans old files rather
  than misreading them).

The on-disk format is ``MAGIC || sha256(payload) || payload`` with a
zlib-compressed payload of packed registers and sorted memory pages.  A
file that fails *any* of the magic/checksum/structure checks is
discarded and regenerated — a checkpoint is a pure cache and is never
trusted over recomputation.  Writes go through a per-key
:class:`~repro.util.locking.FileLock` plus
:func:`~repro.util.locking.atomic_write_bytes`, so concurrent
``--jobs N`` workers cooperate and readers never observe a partial
file (the same discipline as the experiment result cache).

Capture stops *in front of* a halt instruction (``hit_halt``), which is
the timing core's convention; :meth:`WarmState.executed` then counts
only the instructions actually executed.  The functional simulator's
``restore`` places the PC on the halt so its next step executes it,
exactly like a cold ``skip`` would.
"""

from __future__ import annotations

import contextlib
import hashlib
import struct
import zlib
from pathlib import Path
from typing import Dict, List, Optional

from ..backend import get_backend
from ..isa.program import Program
from ..uarch._kernel.ffexec import FF_BAD_PC, FF_HALT
from ..util.locking import FileLock, atomic_write_bytes
from .compiled import HALT, CompiledProgram
from .memory import PAGE_SIZE, Memory
from .simulator import ArchState, SimulationError

#: Bump whenever the serialized layout (or the meaning of any field)
#: changes: old files become unreachable instead of misread.
STATE_FORMAT_VERSION = 1

_MAGIC = b"RPWARM01"
_CHECKSUM_BYTES = 32
# version, pc, executed, skip, hit_halt, num_regs, num_pages
_HEADER = struct.Struct("<IIQQBII")


class WarmState:
    """Complete architectural state after a warm-up skip.

    ``executed`` is the number of instructions actually executed; it is
    less than ``skip`` only when the warm-up ran into a halt
    (``hit_halt``), in which case ``pc`` sits on the halt instruction.
    """

    __slots__ = ("regs", "pages", "pc", "executed", "skip", "hit_halt")

    def __init__(self, regs: List[int], pages: Dict[int, bytes], pc: int,
                 executed: int, skip: int, hit_halt: bool):
        self.regs = regs
        self.pages = pages
        self.pc = pc
        self.executed = executed
        self.skip = skip
        self.hit_halt = hit_halt

    def make_memory(self) -> Memory:
        """A fresh, independently mutable memory with the warm image."""
        return Memory.from_pages(self.pages)


def capture(program: Program, skip: int) -> WarmState:
    """Execute the warm-up functionally and snapshot the resulting state.

    Stops in front of a halt instruction (the timing core's skip
    convention); consumers that must *execute* the halt — the functional
    simulator — do so on their first post-restore step.
    """
    state = ArchState(program)
    ff_entry = CompiledProgram(program).ff_entry
    ffexec = get_backend().ffexec
    pc, executed, status = ffexec.run_ff(
        ff_entry, HALT, state, state.pc, skip, False)
    if status == FF_BAD_PC:
        raise SimulationError(f"warm-up ran off program at {pc:#x}")
    return WarmState(list(state.regs), state.memory.snapshot_pages(),
                     pc, executed, skip, status == FF_HALT)


def serialize(warm: WarmState) -> bytes:
    """Pack *warm* into the self-checking on-disk representation."""
    parts = [_HEADER.pack(STATE_FORMAT_VERSION, warm.pc, warm.executed,
                          warm.skip, int(warm.hit_halt), len(warm.regs),
                          len(warm.pages))]
    parts.append(struct.pack(f"<{len(warm.regs)}I", *warm.regs))
    for number in sorted(warm.pages):  # sorted: stable bytes on disk
        page = warm.pages[number]
        parts.append(struct.pack("<I", number))
        parts.append(page)
    payload = zlib.compress(b"".join(parts), level=1)
    return _MAGIC + hashlib.sha256(payload).digest() + payload


def deserialize(blob: bytes) -> WarmState:
    """Unpack a :func:`serialize` blob; raises ``ValueError`` on any
    corruption (bad magic, checksum mismatch, truncation, bad layout)."""
    prefix = len(_MAGIC) + _CHECKSUM_BYTES
    if len(blob) < prefix or not blob.startswith(_MAGIC):
        raise ValueError("bad checkpoint magic")
    checksum, payload = blob[len(_MAGIC):prefix], blob[prefix:]
    if hashlib.sha256(payload).digest() != checksum:
        raise ValueError("checkpoint checksum mismatch")
    try:
        raw = zlib.decompress(payload)
    except zlib.error as exc:
        raise ValueError(f"checkpoint payload corrupt: {exc}") from exc
    if len(raw) < _HEADER.size:
        raise ValueError("checkpoint header truncated")
    version, pc, executed, skip, hit_halt, num_regs, num_pages = \
        _HEADER.unpack_from(raw)
    if version != STATE_FORMAT_VERSION:
        raise ValueError(f"checkpoint format v{version} != "
                         f"v{STATE_FORMAT_VERSION}")
    offset = _HEADER.size
    expected = offset + 4 * num_regs + num_pages * (4 + PAGE_SIZE)
    if len(raw) != expected:
        raise ValueError("checkpoint body truncated")
    regs = list(struct.unpack_from(f"<{num_regs}I", raw, offset))
    offset += 4 * num_regs
    pages: Dict[int, bytes] = {}
    for _ in range(num_pages):
        (number,) = struct.unpack_from("<I", raw, offset)
        offset += 4
        pages[number] = raw[offset:offset + PAGE_SIZE]
        offset += PAGE_SIZE
    return WarmState(regs, pages, pc, executed, skip, bool(hit_halt))


# repro-flow: sink[flow-cache-key-purity] -- warm keys address the shared checkpoint store
def warm_key(program: Program, skip: int) -> str:
    """Content address of the (program, skip) warm state."""
    hasher = hashlib.sha256()
    hasher.update(program.canonical_digest().encode())
    hasher.update(struct.pack("<QI", skip, STATE_FORMAT_VERSION))
    return f"v{STATE_FORMAT_VERSION}-{hasher.hexdigest()[:32]}"


class CheckpointStore:
    """Get-or-capture warm states, shared across processes via *root*.

    ``root=None`` disables the on-disk layer: states are still captured
    and memoized per process (so e.g. 19 configs of one workload in one
    process share a single warm-up), just never persisted.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else None
        self._memo: Dict[str, WarmState] = {}
        # Where the most recent get() found its state ("memo" / "disk" /
        # "captured"); recorded in run manifests as warm-up provenance.
        self.last_source: Optional[str] = None

    def get(self, program: Program, skip: int) -> WarmState:
        """The warm state for (program, skip): memoized, loaded, or
        captured — in that order of preference."""
        key = warm_key(program, skip)
        warm = self._memo.get(key)
        if warm is not None:
            self.last_source = "memo"
            return warm
        if self.root is None:
            warm = capture(program, skip)
            self._memo[key] = warm
            self.last_source = "captured"
            return warm
        path = self.root / f"{key}.warm"
        warm = self._read(path)
        self.last_source = "disk"
        if warm is None:
            with FileLock(path.with_suffix(".lock")):
                # Another process may have produced it while we waited
                # (or the corrupt file we saw was already replaced).
                warm = self._read(path)
                if warm is None:
                    with contextlib.suppress(OSError):
                        path.unlink()  # corrupt leftover, if any
                    warm = capture(program, skip)
                    self._write(path, warm)
                    self.last_source = "captured"
        self._memo[key] = warm
        return warm

    def _read(self, path: Path) -> Optional[WarmState]:
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return None
        try:
            return deserialize(blob)
        except ValueError:
            return None  # never trusted: caller recaptures under lock

    def _write(self, path: Path, warm: WarmState) -> None:
        atomic_write_bytes(path, serialize(warm))

    def __len__(self) -> int:
        return len(self._memo)