"""Functional (in-order, untimed) simulation of the ISA."""

from .memory import Memory
from .simulator import (
    ArchState,
    ExecOutcome,
    FunctionalSimulator,
    SimulationError,
    execute,
)

__all__ = [
    "Memory",
    "ArchState",
    "ExecOutcome",
    "FunctionalSimulator",
    "SimulationError",
    "execute",
]
