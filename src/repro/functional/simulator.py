"""In-order functional simulator and shared execution semantics.

The function :func:`execute` is the single place in the codebase where
instruction semantics are applied to a machine state.  The functional
simulator drives it against architectural state; the out-of-order timing
core drives it against speculative (checkpointed) state at dispatch, which
is the same structure SimpleScalar's ``sim-outorder`` uses and is what lets
the timing model run wrong paths with real data values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Tuple

from ..isa.instruction import (
    Instruction,
    KIND_BRANCH,
    KIND_HILO,
    KIND_JUMP,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from ..isa.opcodes import (
    NUM_REGS,
    REG_RA,
    REG_SP,
    REG_ZERO,
    div_hi_lo,
    mult_hi_lo,
    u32,
)
from ..isa.program import Program, STACK_TOP
from .memory import Memory


class SimulationError(Exception):
    """Raised when execution leaves the program (bad PC) or misbehaves."""


class ExecOutcome:
    """Everything one dynamic instruction did: the unit of observation.

    The redundancy limit study, the reuse buffer, the value predictor and
    the commit-time verifier all consume these records.  One is created
    per dispatched instruction (wrong paths included), so this is a
    ``__slots__`` class rather than a dataclass.
    """

    __slots__ = ("inst", "operand_a", "operand_b", "next_pc", "result",
                 "result_hi", "writes", "mem_addr", "mem_value", "taken")

    def __init__(self, inst: Instruction, operand_a: int, operand_b: int,
                 next_pc: int, result: Optional[int] = None,
                 result_hi: Optional[int] = None,
                 writes: Tuple[Tuple[int, int], ...] = (),
                 mem_addr: Optional[int] = None,
                 mem_value: Optional[int] = None,
                 taken: Optional[bool] = None):
        self.inst = inst
        self.operand_a = operand_a
        self.operand_b = operand_b
        self.next_pc = next_pc
        self.result = result  # dest value (LO for mult/div, load data)
        self.result_hi = result_hi  # HI for mult/div
        self.writes = writes
        self.mem_addr = mem_addr
        self.mem_value = mem_value
        self.taken = taken

    @property
    def pc(self) -> int:
        return self.inst.pc


class StateProtocol:
    """Duck-typed interface :func:`execute` needs (documentation only)."""

    def read_reg(self, reg: int) -> int: ...
    def write_reg(self, reg: int, value: int) -> None: ...
    def read_mem(self, address: int, nbytes: int, signed: bool) -> int: ...
    def write_mem(self, address: int, value: int, nbytes: int) -> None: ...


def execute(inst: Instruction, state) -> ExecOutcome:
    """Apply *inst* to *state* and return the full outcome record.

    Dispatches on the ``exec_kind`` code decoded once per static
    instruction; every dynamic instance skips the opcode-flag re-tests.
    """
    op = inst.opcode
    b_reg = inst.b_reg
    try:  # both built-in states expose the register list directly
        regs = state.regs
    except AttributeError:  # duck-typed state (StateProtocol)
        read_reg = state.read_reg
        a = read_reg(inst.a_reg)
        b = read_reg(b_reg) if b_reg >= 0 else 0
    else:
        a = regs[inst.a_reg]
        b = regs[b_reg] if b_reg >= 0 else 0
    outcome = ExecOutcome(inst, a, b, inst.next_pc)
    kind = inst.exec_kind

    if kind == KIND_BRANCH:
        outcome.taken = taken = bool(op.eval_fn(a, b, inst.imm))
        if taken:
            outcome.next_pc = inst.target
    elif kind == KIND_LOAD:
        outcome.mem_addr = addr = u32(a + inst.imm)
        outcome.result = result = state.read_mem(addr, op.mem_bytes,
                                                 op.mem_signed)
        outcome.mem_value = result
        rd = inst.rd
        if rd != REG_ZERO:  # a load to $zero is legal and writes nothing
            state.write_reg(rd, result)
            outcome.writes = ((rd, result),)
    elif kind == KIND_STORE:
        outcome.mem_addr = addr = u32(a + inst.imm)
        outcome.mem_value = u32(b)
        state.write_mem(addr, b, op.mem_bytes)
    elif kind == KIND_JUMP:
        outcome.next_pc = a if op.is_indirect else inst.target
        if op.is_call:
            outcome.result = result = u32(inst.next_pc)
            state.write_reg(REG_RA, result)
            outcome.writes = ((REG_RA, result),)
    elif kind == KIND_HILO:
        pair = mult_hi_lo(a, b) if op.name == "mult" else div_hi_lo(a, b)
        outcome.result_hi, outcome.result = pair
        hi_reg, lo_reg = inst.dest_regs
        state.write_reg(hi_reg, pair[0])
        state.write_reg(lo_reg, pair[1])
        outcome.writes = ((hi_reg, pair[0]), (lo_reg, pair[1]))
    elif kind == KIND_NOP:
        pass  # nop and halt produce nothing; halt is handled by the caller
    else:
        outcome.result = result = u32(op.eval_fn(a, b, inst.imm))
        dest_regs = inst.dest_regs
        if dest_regs:  # dest_regs[0], not rd: FP compares write $fcc
            rd = dest_regs[0]
            if rd != REG_ZERO:
                state.write_reg(rd, result)
                outcome.writes = ((rd, result),)
    return outcome


class ArchState:
    """Architectural register file + memory, directly executable."""

    __slots__ = ("regs", "memory", "pc")

    def __init__(self, program: Program):
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[REG_SP] = STACK_TOP
        self.memory = Memory(program.data)
        self.pc = program.entry_point

    def read_reg(self, reg: int) -> int:
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != REG_ZERO:
            self.regs[reg] = u32(value)

    def read_mem(self, address: int, nbytes: int, signed: bool) -> int:
        return self.memory.read(address, nbytes, signed)

    def write_mem(self, address: int, value: int, nbytes: int) -> None:
        self.memory.write(address, value, nbytes)


class FunctionalSimulator:
    """Executes a program one instruction at a time, in program order.

    Used directly for the limit studies (Figures 8-10), for fast-forwarding
    past initialisation (the paper skips 1-2.5 billion instructions), and as
    the ground truth in differential tests of the timing core.
    """

    def __init__(self, program: Program, compiled: bool = True):
        self.program = program
        self.state = ArchState(program)
        self.halted = False
        self.instructions_retired = 0
        # Decode-time compiled closures (see repro.functional.compiled);
        # pass compiled=False for the reference interpreted stepper the
        # differential tests compare against.  Imported lazily: compiled
        # itself imports ExecOutcome from this module.
        if compiled:
            from .compiled import CompiledProgram, HALT
            from ..backend import get_backend
            self._compiled: Optional["CompiledProgram"] = \
                CompiledProgram(program)
            self._halt_sentinel = HALT
            # The fast-forward dispatch loop is a kernel function
            # (interpreted or mypyc-built, per the active backend).
            self._ffexec = get_backend().ffexec
        else:
            self._compiled = None
            self._halt_sentinel = None
            self._ffexec = None

    @property
    def pc(self) -> int:
        return self.state.pc

    def step(self) -> ExecOutcome:
        """Execute one instruction; raises on bad PCs, sets ``halted``."""
        if self.halted:
            raise SimulationError("stepping a halted simulator")
        state = self.state
        if self._compiled is not None:
            entry = self._compiled.exec_entry(state.pc)
            if entry is None:
                raise SimulationError(f"no instruction at pc={state.pc:#x}")
            fn, is_halt = entry
            outcome = fn(state)
            if is_halt:
                self.halted = True
                outcome.next_pc = outcome.inst.pc
        else:
            inst = self.program.fetch(state.pc)
            if inst is None:
                raise SimulationError(f"no instruction at pc={state.pc:#x}")
            outcome = execute(inst, state)
            if inst.opcode.is_halt:
                self.halted = True
                outcome.next_pc = inst.pc
        state.pc = outcome.next_pc
        self.instructions_retired += 1
        return outcome

    def run(self, max_instructions: Optional[int] = None) -> int:
        """Run until halt or *max_instructions*; returns instructions run."""
        if self._compiled is None:
            executed = 0
            while not self.halted:
                if max_instructions is not None \
                        and executed >= max_instructions:
                    break
                self.step()
                executed += 1
            return executed
        # Compiled fast-forward lane: no ExecOutcome allocation at all.
        # State mutations are identical to the interpreted loop (pinned
        # by tests/functional/test_compiled.py); like step(), an executed
        # halt counts and leaves the PC on the halt instruction.  The
        # loop itself is the kernel's run_ff driver (shared with
        # core.skip and checkpoint.capture).
        if self.halted:
            return 0
        state = self.state
        ffexec = self._ffexec
        budget = (ffexec.FF_UNBOUNDED if max_instructions is None
                  else max_instructions)
        pc, executed, status = ffexec.run_ff(
            self._compiled.ff_entry, self._halt_sentinel, state,
            state.pc, budget, True)
        # Keep state coherent even on a bad-PC error.
        state.pc = pc
        self.instructions_retired += executed
        if status == ffexec.FF_BAD_PC:
            raise SimulationError(f"no instruction at pc={pc:#x}")
        if status == ffexec.FF_HALT:
            self.halted = True
        return executed

    def restore(self, warm) -> None:
        """Adopt a captured warm state (see ``functional.checkpoint``).

        After this the simulator is indistinguishable from one that just
        executed ``warm.executed`` instructions from reset: the PC sits on
        the next unexecuted instruction (the halt itself when the warm-up
        stopped in front of one), so a following :meth:`run`/:meth:`skip`
        continues exactly like the cold run would.
        """
        state = self.state
        state.regs = list(warm.regs)
        state.memory = warm.make_memory()
        state.pc = warm.pc
        self.halted = False
        self.instructions_retired = warm.executed

    def stream(self, max_instructions: Optional[int] = None
               ) -> Iterator[ExecOutcome]:
        """Yield :class:`ExecOutcome` records until halt or the limit."""
        executed = 0
        while not self.halted:
            if max_instructions is not None and executed >= max_instructions:
                return
            yield self.step()
            executed += 1

    def skip(self, count: int) -> int:
        """Fast-forward *count* instructions (the paper's warm-up skip)."""
        return self.run(max_instructions=count)
