"""Sparse byte-addressable memory used by both simulators.

Memory is organised as a dictionary of fixed-size ``bytearray`` pages so
that programs can scatter data across a 32-bit address space (text, data,
stack) without allocating gigabytes.  Reads of untouched memory return 0,
matching a zero-initialised address space.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Tuple

from ..isa.opcodes import s32, u32

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class Memory:
    """Paged sparse memory with word/half/byte accessors."""

    __slots__ = ("_pages",)

    def __init__(self, image: Dict[int, int] | None = None):
        self._pages: Dict[int, bytearray] = {}
        if image:
            for address, byte in image.items():
                self.write_byte(address, byte)

    # -- byte primitives -------------------------------------------------------

    def read_byte(self, address: int) -> int:
        page = self._pages.get(address >> PAGE_SHIFT)
        if page is None:
            return 0
        return page[address & PAGE_MASK]

    def write_byte(self, address: int, value: int) -> None:
        page_number = address >> PAGE_SHIFT
        page = self._pages.get(page_number)
        if page is None:
            page = self._pages[page_number] = bytearray(PAGE_SIZE)
        page[address & PAGE_MASK] = value & 0xFF

    # -- sized accessors (little-endian) ---------------------------------------

    def read(self, address: int, nbytes: int, signed: bool = False) -> int:
        value = 0
        for offset in range(nbytes):
            value |= self.read_byte(address + offset) << (8 * offset)
        if signed:
            sign_bit = 1 << (8 * nbytes - 1)
            if value & sign_bit:
                value -= sign_bit << 1
        return u32(value)

    def write(self, address: int, value: int, nbytes: int) -> None:
        value = u32(value)
        for offset in range(nbytes):
            self.write_byte(address + offset, (value >> (8 * offset)) & 0xFF)

    def read_word(self, address: int) -> int:
        return self.read(address, 4)

    def write_word(self, address: int, value: int) -> None:
        self.write(address, value, 4)

    def read_word_signed(self, address: int) -> int:
        return s32(self.read(address, 4))

    # -- bulk helpers -----------------------------------------------------------

    def load_image(self, image: Dict[int, int]) -> None:
        """Copy a byte-granular image (e.g. :attr:`Program.data`) into memory."""
        for address, byte in image.items():
            self.write_byte(address, byte)

    def copy(self) -> "Memory":
        clone = Memory()
        clone._pages = {number: bytearray(page)
                        for number, page in self._pages.items()}
        return clone

    def snapshot_pages(self) -> Dict[int, bytes]:
        """Immutable page map for warm-state capture (page number -> bytes)."""
        return {number: bytes(page)
                for number, page in self._pages.items()}

    @classmethod
    def from_pages(cls, pages: Dict[int, bytes]) -> "Memory":
        """Rebuild a memory from a :meth:`snapshot_pages` map."""
        memory = cls()
        memory._pages = {number: bytearray(page)
                         for number, page in pages.items()}
        return memory

    def touched_pages(self) -> Iterable[int]:
        """Page numbers that have been written (for tests/inspection)."""
        return self._pages.keys()

    def dump(self, address: int, nbytes: int) -> bytes:
        """Return *nbytes* starting at *address* as ``bytes``."""
        return bytes(self.read_byte(address + i) for i in range(nbytes))
