"""Decode-time compiled instruction semantics.

:func:`repro.functional.simulator.execute` interprets one instruction by
re-testing its ``exec_kind`` and re-loading opcode attributes on every
dynamic instance.  This module moves all of that work to decode time:
:func:`compile_exec` builds, **once per static instruction**, a closure
with the operand register indices, the ALU evaluation function, the
immediate, the memory width and the writeback destination already bound
as cell variables.  Executing a dynamic instance is then a single call
with no dispatch, no attribute chains and no dead branches.

Two closure flavours exist, because the two consumers need different
amounts of observation:

* :func:`compile_exec` — ``closure(state) -> ExecOutcome``, a drop-in
  replacement for ``execute``: identical state mutations *and* an
  identical outcome record (the reuse buffer, value predictor and
  commit-time verifier all consume those fields, so they are pinned by
  the golden corpus and the differential tests);
* :func:`compile_ff` — ``closure(state) -> next_pc``, the fast-forward
  flavour used by warm-up skips: the same state mutations with no
  :class:`ExecOutcome` allocation at all.  Warm-up dominates the limit
  studies (the paper skips billions of instructions; see ISSUE/PAPER
  methodology), so this path is allocation-free by design.

Closures target the two built-in state classes (``ArchState`` and the
timing core's ``SpeculativeState``): both expose ``regs`` as a plain
list and ``memory`` as a :class:`~repro.functional.memory.Memory`.
Memory *writes* go through ``state.write_mem`` so the speculative
state's undo journal keeps working; duck-typed ``StateProtocol`` states
must keep using the interpreted ``execute``.

``tests/functional/test_compiled.py`` pins the equivalence with a
Hypothesis differential test over random programs.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..isa.instruction import (
    Instruction,
    KIND_BRANCH,
    KIND_HILO,
    KIND_JUMP,
    KIND_LOAD,
    KIND_NOP,
    KIND_STORE,
)
from ..isa.opcodes import (
    MASK32,
    REG_RA,
    REG_ZERO,
    div_hi_lo,
    mult_hi_lo,
)
from ..isa.program import Program
from .simulator import ExecOutcome

#: Sentinel returned by :meth:`CompiledProgram.ff_entry` for halt
#: instructions: callers decide whether the halt is executed (functional
#: run) or fetched by the timing front end (core warm-up skip).
HALT = object()

ExecFn = Callable[[object], ExecOutcome]
FFFn = Callable[[object], int]


def compile_exec(inst: Instruction) -> ExecFn:
    """Build the outcome-producing closure for *inst*.

    The returned closure applies exactly the state mutations of
    ``execute(inst, state)`` and returns a field-identical
    :class:`ExecOutcome`.
    """
    op = inst.opcode
    kind = inst.exec_kind
    a_reg = inst.a_reg
    b_reg = inst.b_reg
    imm = inst.imm
    target = inst.target
    next_pc = inst.next_pc

    if kind == KIND_BRANCH:
        eval_fn = op.eval_fn
        if b_reg >= 0:
            def run(state) -> ExecOutcome:
                regs = state.regs
                a = regs[a_reg]
                b = regs[b_reg]
                if eval_fn(a, b, imm):
                    return ExecOutcome(inst, a, b, target, taken=True)
                return ExecOutcome(inst, a, b, next_pc, taken=False)
        else:
            def run(state) -> ExecOutcome:
                a = state.regs[a_reg]
                if eval_fn(a, 0, imm):
                    return ExecOutcome(inst, a, 0, target, taken=True)
                return ExecOutcome(inst, a, 0, next_pc, taken=False)
        return run

    if kind == KIND_LOAD:
        nbytes = op.mem_bytes
        signed = op.mem_signed
        rd = inst.rd
        if rd != REG_ZERO:
            def run(state) -> ExecOutcome:
                regs = state.regs
                a = regs[a_reg]
                addr = (a + imm) & MASK32
                result = state.memory.read(addr, nbytes, signed)
                regs[rd] = result
                return ExecOutcome(inst, a, 0, next_pc, result,
                                   writes=((rd, result),),
                                   mem_addr=addr, mem_value=result)
        else:  # a load to $zero is legal and writes nothing
            def run(state) -> ExecOutcome:
                a = state.regs[a_reg]
                addr = (a + imm) & MASK32
                result = state.memory.read(addr, nbytes, signed)
                return ExecOutcome(inst, a, 0, next_pc, result,
                                   mem_addr=addr, mem_value=result)
        return run

    if kind == KIND_STORE:
        nbytes = op.mem_bytes

        def run(state) -> ExecOutcome:
            regs = state.regs
            a = regs[a_reg]
            b = regs[b_reg]
            addr = (a + imm) & MASK32
            state.write_mem(addr, b, nbytes)
            return ExecOutcome(inst, a, b, next_pc,
                               mem_addr=addr, mem_value=b & MASK32)
        return run

    if kind == KIND_JUMP:
        if op.is_indirect:
            if op.is_call:
                def run(state) -> ExecOutcome:
                    regs = state.regs
                    a = regs[a_reg]
                    link = next_pc & MASK32
                    regs[REG_RA] = link
                    return ExecOutcome(inst, a, 0, a, link,
                                       writes=((REG_RA, link),))
            else:
                def run(state) -> ExecOutcome:
                    a = state.regs[a_reg]
                    return ExecOutcome(inst, a, 0, a)
        else:
            if op.is_call:
                def run(state) -> ExecOutcome:
                    regs = state.regs
                    a = regs[a_reg]
                    link = next_pc & MASK32
                    regs[REG_RA] = link
                    return ExecOutcome(inst, a, 0, target, link,
                                       writes=((REG_RA, link),))
            else:
                def run(state) -> ExecOutcome:
                    return ExecOutcome(inst, state.regs[a_reg], 0, target)
        return run

    if kind == KIND_HILO:
        pair_fn = mult_hi_lo if op.name == "mult" else div_hi_lo
        hi_reg, lo_reg = inst.dest_regs

        def run(state) -> ExecOutcome:
            regs = state.regs
            a = regs[a_reg]
            b = regs[b_reg]
            hi, lo = pair_fn(a, b)
            regs[hi_reg] = hi
            regs[lo_reg] = lo
            return ExecOutcome(inst, a, b, next_pc, lo, hi,
                               writes=((hi_reg, hi), (lo_reg, lo)))
        return run

    if kind == KIND_NOP:  # nop and halt produce nothing
        def run(state) -> ExecOutcome:
            return ExecOutcome(inst, state.regs[a_reg], 0, next_pc)
        return run

    # KIND_ALU (including FP ops and FP compares writing $fcc).
    eval_fn = op.eval_fn
    dest_regs = inst.dest_regs
    rd = dest_regs[0] if dest_regs else REG_ZERO  # never $zero when present
    if rd != REG_ZERO:
        if b_reg >= 0:
            def run(state) -> ExecOutcome:
                regs = state.regs
                a = regs[a_reg]
                b = regs[b_reg]
                result = eval_fn(a, b, imm) & MASK32
                regs[rd] = result
                return ExecOutcome(inst, a, b, next_pc, result,
                                   writes=((rd, result),))
        else:
            def run(state) -> ExecOutcome:
                regs = state.regs
                a = regs[a_reg]
                result = eval_fn(a, 0, imm) & MASK32
                regs[rd] = result
                return ExecOutcome(inst, a, 0, next_pc, result,
                                   writes=((rd, result),))
    else:  # result is still computed and recorded (no writeback)
        if b_reg >= 0:
            def run(state) -> ExecOutcome:
                regs = state.regs
                a = regs[a_reg]
                b = regs[b_reg]
                return ExecOutcome(inst, a, b, next_pc,
                                   eval_fn(a, b, imm) & MASK32)
        else:
            def run(state) -> ExecOutcome:
                a = state.regs[a_reg]
                return ExecOutcome(inst, a, 0, next_pc,
                                   eval_fn(a, 0, imm) & MASK32)
    return run


def compile_ff(inst: Instruction) -> FFFn:
    """Build the fast-forward closure: same mutations, returns next PC.

    Must not be called for halt instructions (the drivers stop at
    :data:`HALT` instead — whether the halt itself counts as executed is
    the caller's convention, see ``FunctionalSimulator.run`` vs
    ``OutOfOrderCore.skip``).
    """
    op = inst.opcode
    kind = inst.exec_kind
    a_reg = inst.a_reg
    b_reg = inst.b_reg
    imm = inst.imm
    target = inst.target
    next_pc = inst.next_pc

    if kind == KIND_BRANCH:
        eval_fn = op.eval_fn
        if b_reg >= 0:
            def ff(state) -> int:
                regs = state.regs
                return target if eval_fn(regs[a_reg], regs[b_reg], imm) \
                    else next_pc
        else:
            def ff(state) -> int:
                return target if eval_fn(state.regs[a_reg], 0, imm) \
                    else next_pc
        return ff

    if kind == KIND_LOAD:
        nbytes = op.mem_bytes
        signed = op.mem_signed
        rd = inst.rd
        if rd != REG_ZERO:
            def ff(state) -> int:
                regs = state.regs
                regs[rd] = state.memory.read((regs[a_reg] + imm) & MASK32,
                                             nbytes, signed)
                return next_pc
        else:
            def ff(state) -> int:
                state.memory.read((state.regs[a_reg] + imm) & MASK32,
                                  nbytes, signed)
                return next_pc
        return ff

    if kind == KIND_STORE:
        nbytes = op.mem_bytes

        def ff(state) -> int:
            regs = state.regs
            state.write_mem((regs[a_reg] + imm) & MASK32, regs[b_reg],
                            nbytes)
            return next_pc
        return ff

    if kind == KIND_JUMP:
        if op.is_indirect:
            if op.is_call:
                def ff(state) -> int:  # read target before the $ra link
                    regs = state.regs
                    dest = regs[a_reg]
                    regs[REG_RA] = next_pc & MASK32
                    return dest
            else:
                def ff(state) -> int:
                    return state.regs[a_reg]
        else:
            if op.is_call:
                def ff(state) -> int:
                    state.regs[REG_RA] = next_pc & MASK32
                    return target
            else:
                def ff(state) -> int:
                    return target
        return ff

    if kind == KIND_HILO:
        pair_fn = mult_hi_lo if op.name == "mult" else div_hi_lo
        hi_reg, lo_reg = inst.dest_regs

        def ff(state) -> int:
            regs = state.regs
            regs[hi_reg], regs[lo_reg] = pair_fn(regs[a_reg], regs[b_reg])
            return next_pc
        return ff

    if kind == KIND_NOP:
        def ff(state) -> int:
            return next_pc
        return ff

    eval_fn = op.eval_fn
    dest_regs = inst.dest_regs
    rd = dest_regs[0] if dest_regs else REG_ZERO
    if rd != REG_ZERO:
        if b_reg >= 0:
            def ff(state) -> int:
                regs = state.regs
                regs[rd] = eval_fn(regs[a_reg], regs[b_reg], imm) & MASK32
                return next_pc
        else:
            def ff(state) -> int:
                regs = state.regs
                regs[rd] = eval_fn(regs[a_reg], 0, imm) & MASK32
                return next_pc
    else:
        def ff(state) -> int:
            return next_pc
    return ff


class CompiledProgram:
    """Lazy PC -> compiled-closure tables over one program.

    Mirrors :class:`~repro.uarch.decode.DecodeTable`'s laziness: only PCs
    that are actually reached are ever compiled, and invalid PCs
    (``.space`` gaps, addresses off the program) return ``None``.
    """

    __slots__ = ("program", "_exec", "_ff")

    def __init__(self, program: Program):
        self.program = program
        self._exec: Dict[int, Tuple[ExecFn, bool]] = {}
        self._ff: Dict[int, object] = {}

    def exec_entry(self, pc: int) -> Optional[Tuple[ExecFn, bool]]:
        """``(closure, is_halt)`` for *pc*, or ``None`` for a bad PC."""
        entry = self._exec.get(pc)
        if entry is None:
            inst = self.program.fetch(pc)
            if inst is None:
                return None
            entry = (compile_exec(inst), inst.opcode.is_halt)
            self._exec[pc] = entry
        return entry

    def ff_entry(self, pc: int):
        """Fast-forward closure for *pc*, :data:`HALT`, or ``None``."""
        entry = self._ff.get(pc)
        if entry is None:
            inst = self.program.fetch(pc)
            if inst is None:
                return None
            entry = HALT if inst.opcode.is_halt else compile_ff(inst)
            self._ff[pc] = entry
        return entry
