"""Functional-unit pools with the paper's latency/issue-interval model.

Table 1 gives "FU latency (total/issue)" pairs: *total* is the execution
latency, *issue* is how long the unit stays busy before accepting another
operation (19 for the non-pipelined integer divider, 1 for pipelined units).
Branches execute on integer ALUs; loads and stores share the two
load/store units.
"""

from __future__ import annotations

from typing import Dict, List

from ..isa.opcodes import OpClass
from .config import MachineConfig
from .decode import OP_CLASS_INDEX


class FUPool:
    """A pool of identical units, each tracked by its next-free cycle."""

    def __init__(self, name: str, count: int):
        self.name = name
        self.busy_until: List[int] = [0] * count
        self.grants = 0
        self.denials = 0

    def try_issue(self, cycle: int, issue_interval: int) -> bool:
        """Reserve a unit at *cycle* for *issue_interval* cycles."""
        for index, free_at in enumerate(self.busy_until):
            if free_at <= cycle:
                self.busy_until[index] = cycle + issue_interval
                self.grants += 1
                return True
        self.denials += 1
        return False

    def available(self, cycle: int) -> int:
        return sum(1 for free_at in self.busy_until if free_at <= cycle)


class FunctionalUnits:
    """All execution resources of the machine, keyed by :class:`OpClass`."""

    def __init__(self, config: MachineConfig):
        alu = FUPool("int_alu", config.int_alus)
        load_store = FUPool("load_store", config.load_store_units)
        mult_div = FUPool("int_mult_div", config.int_mult_div_units)
        fp_add = FUPool("fp_add", config.fp_adders)
        fp_mult_div = FUPool("fp_mult_div", config.fp_mult_div_units)
        self.pools: Dict[OpClass, FUPool] = {
            OpClass.INT_ALU: alu,
            OpClass.BRANCH: alu,  # branches execute on integer ALUs
            OpClass.LOAD_STORE: load_store,
            OpClass.INT_MULT: mult_div,
            OpClass.INT_DIV: mult_div,
            OpClass.FP_ADD: fp_add,
            OpClass.FP_MUL_DIV: fp_mult_div,
            OpClass.NOP: alu,
        }
        # Same pools indexed by StaticOp.op_class_index: the per-issue
        # lookup is one list index instead of an enum-keyed dict probe.
        self.pool_list: List[FUPool] = [None] * len(OP_CLASS_INDEX)
        for op_class, pool in self.pools.items():
            self.pool_list[OP_CLASS_INDEX[op_class]] = pool

    def try_issue(self, op_class: OpClass, cycle: int,
                  issue_interval: int) -> bool:
        return self.pools[op_class].try_issue(cycle, issue_interval)

    def requests(self) -> int:
        unique = {id(p): p for p in self.pools.values()}
        return sum(p.grants + p.denials for p in unique.values())

    def denials(self) -> int:
        unique = {id(p): p for p in self.pools.values()}
        return sum(p.denials for p in unique.values())
