"""Speculative architectural state with checkpoint/rollback.

The timing core executes instructions functionally *at dispatch*, in fetch
order, against this state (the SimpleScalar ``sim-outorder`` design).  When
a predicted control instruction dispatches, the core takes a checkpoint;
a squash restores the register file copy and unwinds the memory undo
journal back to the checkpoint's position.  This is what lets the model
run down wrong paths with real data values — which the paper's IR
squash-recovery results depend on — and recover exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..isa.opcodes import NUM_REGS, REG_SP, REG_ZERO, u32
from ..isa.program import Program, STACK_TOP
from ..functional.memory import Memory


@dataclass
class Checkpoint:
    """Rollback point: register-file copy + memory journal position."""

    regs: List[int]
    journal_mark: int
    pc: int


class SpeculativeState:
    """Register file and journaled memory executed at dispatch."""

    def __init__(self, program: Program):
        self.regs: List[int] = [0] * NUM_REGS
        self.regs[REG_SP] = STACK_TOP
        self.memory = Memory(program.data)
        # Undo journal of (address, old_value, nbytes) records.
        self._journal: List[Tuple[int, int, int]] = []
        self._live_checkpoints = 0
        # Released Checkpoint objects, recycled by take_checkpoint so the
        # steady state allocates no checkpoint (or register list) per
        # predicted branch.
        self._cp_pool: List[Checkpoint] = []

    # -- StateProtocol (used by repro.functional.simulator.execute) --------------

    def read_reg(self, reg: int) -> int:
        return self.regs[reg]

    def write_reg(self, reg: int, value: int) -> None:
        if reg != REG_ZERO:
            self.regs[reg] = u32(value)

    def read_mem(self, address: int, nbytes: int, signed: bool) -> int:
        return self.memory.read(address, nbytes, signed)

    def write_mem(self, address: int, value: int, nbytes: int) -> None:
        if self._live_checkpoints:
            old = self.memory.read(address, nbytes, signed=False)
            self._journal.append((address, old, nbytes))
        self.memory.write(address, value, nbytes)

    # -- checkpointing ------------------------------------------------------------

    def take_checkpoint(self, pc: int) -> Checkpoint:
        self._live_checkpoints += 1
        pool = self._cp_pool
        if pool:
            checkpoint = pool.pop()
            checkpoint.regs[:] = self.regs
            checkpoint.journal_mark = len(self._journal)
            checkpoint.pc = pc
            return checkpoint
        return Checkpoint(list(self.regs), len(self._journal), pc)

    def restore(self, checkpoint: Checkpoint) -> None:
        """Roll state back to *checkpoint* (which stays valid for reuse)."""
        self.regs[:] = checkpoint.regs
        while len(self._journal) > checkpoint.journal_mark:
            address, old, nbytes = self._journal.pop()
            self.memory.write(address, old, nbytes)

    def release_checkpoint(self, checkpoint: Checkpoint) -> None:
        """Drop *checkpoint* (its branch resolved or was squashed)."""
        self._live_checkpoints -= 1
        if self._live_checkpoints == 0:
            self._journal.clear()
        self._cp_pool.append(checkpoint)

    @property
    def journal_length(self) -> int:
        return len(self._journal)
