"""Out-of-order timing simulation: the paper's Table 1 machine."""

from .config import (
    BranchPolicy,
    BranchPredictorConfig,
    CacheConfig,
    IRConfig,
    IRValidation,
    MachineConfig,
    PredictorKind,
    ReexecPolicy,
    VPConfig,
    all_vp_configs,
    base_config,
    ir_config,
    vp_config,
)
from .core import OutOfOrderCore

__all__ = [
    "BranchPolicy",
    "BranchPredictorConfig",
    "CacheConfig",
    "IRConfig",
    "IRValidation",
    "MachineConfig",
    "PredictorKind",
    "ReexecPolicy",
    "VPConfig",
    "all_vp_configs",
    "base_config",
    "ir_config",
    "vp_config",
    "OutOfOrderCore",
]
