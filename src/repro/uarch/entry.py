"""The in-flight (ROB-resident) dynamic instruction record.

Timing semantics used throughout the core:

* a value with ``ready_cycle == r`` can be consumed by an execution issuing
  at cycle ``r + 1`` or later;
* a value-predicted or reused result is available at the dispatch cycle;
* ``nonspec_cycle`` is the cycle at which the value became non-value-
  speculative (verified); for non-VP configurations this equals the
  completion cycle.  Commit requires it.

Every dynamic instance is built from the pre-decoded :class:`StaticOp`
of its static instruction (see :mod:`repro.uarch.decode`): the
classification flags below (``is_load``, ``is_control``, ...) are plain
attributes copied from the shared record, not properties re-deriving
opcode facts per access — the issue/wakeup hot path reads them millions
of times per run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..functional.simulator import ExecOutcome
from ..isa.opcodes import REG_HI
from .branch_predictor import BranchPrediction
from .decode import StaticOp
from .spec_state import Checkpoint


class InflightOp:
    """One dynamic instruction from dispatch to commit (or squash)."""

    __slots__ = (
        "seq", "meta", "inst", "outcome", "dispatch_cycle",
        "producers", "src_values", "consumers",
        "completed", "ready_cycle", "value_ready_cycle", "hi_ready_cycle",
        "nonspec_cycle", "current_value", "current_hi",
        "exec_count", "issued", "completes_at", "issue_read_values",
        "used_values", "used_addr", "stale", "reexec_earliest",
        "pending_final_reexec",
        "predicted", "predicted_value", "prediction_way",
        "addr_predicted", "predicted_addr", "addr_prediction_way",
        "reused", "addr_reused", "reuse_value", "rb_entry",
        "prediction", "believed_taken", "believed_target",
        "resolved_final", "last_resolution_cycle", "checkpoint",
        "current_addr", "addr_known_cycle", "forwarded_from",
        "rename_snapshot", "issue_cycle", "issue_addr",
        "last_completion_cycle", "reuse_hit_full", "reuse_hit_addr",
        "executes", "squashed", "in_issue_queue",
        "is_load", "is_store", "is_mem", "is_control", "is_cond_branch",
        "needs_checkpoint",
    )

    def __init__(self, seq: int, meta: StaticOp, outcome: ExecOutcome,
                 dispatch_cycle: int):
        self.seq = seq
        self.meta = meta
        self.inst = meta.inst
        self.outcome = outcome
        self.dispatch_cycle = dispatch_cycle

        # Static classification, shared with every other dynamic instance.
        self.is_load = meta.is_load
        self.is_store = meta.is_store
        self.is_mem = meta.is_mem
        self.is_control = meta.is_control
        self.is_cond_branch = meta.is_branch
        self.needs_checkpoint = meta.needs_checkpoint
        self.executes = meta.executes

        # Register dataflow, fixed at rename time.
        self.producers: Dict[int, "InflightOp"] = {}  # src reg -> producer
        self.src_values: Dict[int, int] = {}  # dispatch-time (oracle) values
        self.consumers: List[Tuple["InflightOp", int]] = []  # (consumer, reg)

        # Timing state.
        self.completed = False  # final execution done (commit gating)
        self.ready_cycle: Optional[int] = None  # first value broadcast
        self.value_ready_cycle: Optional[int] = None  # incl. predictions
        self.hi_ready_cycle: Optional[int] = None  # HI of mult/div
        self.nonspec_cycle: Optional[int] = None
        self.current_value: Optional[int] = None
        self.current_hi: Optional[int] = None

        # Execution machinery.
        self.exec_count = 0
        self.issued = False  # an execution is in flight
        self.completes_at: Optional[int] = None
        self.issue_read_values: Dict[int, int] = {}
        self.used_values: Dict[int, int] = {}  # per-src values last read
        self.used_addr: Optional[int] = None  # address last used (mem ops)
        self.stale = False  # inputs changed while executing
        self.reexec_earliest: Optional[int] = None  # pending re-execution
        self.pending_final_reexec = False  # NME: re-exec when inputs final
        self.in_issue_queue = False  # resident in the core's wakeup queue

        # Value prediction.
        self.predicted = False
        self.predicted_value: Optional[int] = None
        self.prediction_way: Optional[int] = None
        self.addr_predicted = False
        self.predicted_addr: Optional[int] = None
        self.addr_prediction_way: Optional[int] = None

        # Instruction reuse.
        self.reused = False
        self.addr_reused = False
        self.reuse_value: Optional[int] = None
        self.rb_entry = None  # entry this op inserted (for squash recovery)

        # Control.
        self.prediction: Optional[BranchPrediction] = None
        self.believed_taken: Optional[bool] = None
        self.believed_target: Optional[int] = None
        self.resolved_final = False
        self.last_resolution_cycle: Optional[int] = None
        self.checkpoint: Optional[Checkpoint] = None

        # Memory.
        self.current_addr: Optional[int] = None
        self.addr_known_cycle: Optional[int] = None  # stores: disambiguation
        self.forwarded_from: Optional["InflightOp"] = None

        self.rename_snapshot = None  # rename-map copy for squash recovery
        self.issue_cycle: Optional[int] = None
        self.issue_addr: Optional[int] = None
        self.last_completion_cycle: Optional[int] = None
        self.reuse_hit_full = False  # statistics flags (Table 3)
        self.reuse_hit_addr = False

        self.squashed = False

    # -- dataflow helpers ------------------------------------------------------------

    def value_for_reg(self, reg: int) -> Optional[int]:
        """Current broadcast value of my dest *reg* (HI vs LO aware)."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.current_hi
        return self.current_value

    def reg_ready_cycle(self, reg: int) -> Optional[int]:
        """When my dest *reg* became available to consumers."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.hi_ready_cycle
        return self.value_ready_cycle

    def final_value_for_reg(self, reg: int) -> Optional[int]:
        """Value of *reg* once I am non-speculative (oracle along my path)."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.outcome.result_hi
        return self.outcome.result

    def operands_ready(self, issue_cycle: int) -> bool:
        """Can an execution issuing at *issue_cycle* read all register inputs?"""
        for reg, producer in self.producers.items():
            ready = producer.reg_ready_cycle(reg)
            if ready is None or ready >= issue_cycle:
                return False
        return True

    def read_current_operands(self) -> Dict[int, int]:
        """Snapshot the *current* values of all source registers."""
        values: Dict[int, int] = {}
        src_values = self.src_values
        producers = self.producers
        for reg in self.meta.src_regs:
            producer = producers.get(reg)
            if producer is None:
                values[reg] = src_values[reg]
            else:
                current = producer.value_for_reg(reg)
                values[reg] = (current if current is not None
                               else src_values[reg])
        return values

    def inputs_match_oracle(self, values: Dict[int, int]) -> bool:
        src_values = self.src_values
        return all(values[reg] == src_values[reg] for reg in values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<op#{self.seq} {self.inst.opcode.name}@{self.inst.pc:#x}"
                f"{' squashed' if self.squashed else ''}>")
