"""Entry-pool façade: backend-dispatched ``EntryPool`` / ``CommittedOp``.

The implementation lives in :mod:`repro.uarch._kernel.entry_pool` — the
mypyc-compilable kernel — and this module re-exports it through the
active backend (:func:`repro.backend.get_backend`), so existing imports
(``from repro.uarch.entry import EntryPool``) keep working and resolve
to whichever implementation the process selected.  Token-layout
constants are import-time static (identical on every backend); the
classes are looked up lazily via PEP 562 so merely importing this
module never forces backend resolution.

``_SCALAR_DEFAULTS`` — the (field, pristine value) table for every
non-container pool array — lives *here*, not in the kernel: the kernel
``_grow``/``free`` spell the resets out field by field (mypyc-clean, no
``getattr`` walks), and the property tests use this table to smudge and
re-check slots, cross-checking the explicit kernel code against the
declarative spec on both backends.

See the kernel module's docstring for the storage design: parallel
arrays + free-list allocator, ``(seq << SEQ_SHIFT) | id`` validity
tokens, consumer-pinned retirement and the gated squash-reset contract.
"""

from __future__ import annotations

from typing import Any, Tuple

# Token layout: (seq << SEQ_SHIFT) | entry_id.  SEQ_SHIFT bounds the pool
# capacity (2**SEQ_SHIFT slots), not the instruction count — Python ints
# are unbounded, so seq can grow past any budget without overflow.
SEQ_SHIFT = 20
IDX_MASK = (1 << SEQ_SHIFT) - 1
# Consumer-edge layout: (token << REG_SHIFT) | reg  (NUM_REGS == 67 < 128).
REG_SHIFT = 7
REG_MASK = (1 << REG_SHIFT) - 1

#: (array name, per-slot default) for every non-container field; the
#: kernel's `_grow` seeds new slots with these values and `free`
#: restores the ones the slot's lifetime could have written (identity
#: fields are rewritten by every `alloc` instead).  The kernel writes
#: these resets as explicit per-field code; the dual-backend tests
#: assert fresh and freed slots match this table, so spec and code
#: cannot drift apart silently.
_SCALAR_DEFAULTS: Tuple[Tuple[str, Any], ...] = (
    ("seq_of", -1), ("meta", None), ("outcome", None),
    ("dispatch_cycle", 0),
    ("is_load", False), ("is_store", False), ("is_mem", False),
    ("is_control", False), ("writes_hi_lo", False),
    ("refs", 0), ("retired", False),
    ("completed", False), ("ready_cycle", None),
    ("value_ready_cycle", None), ("hi_ready_cycle", None),
    ("nonspec_cycle", None), ("current_value", None), ("current_hi", None),
    ("exec_count", 0), ("issued", False), ("completes_at", None),
    ("issue_read_values", None), ("used_addr", None), ("stale", False),
    ("reexec_earliest", None), ("in_issue_queue", False),
    ("predicted", False), ("predicted_value", None),
    ("addr_predicted", False), ("predicted_addr", None),
    ("reused", False), ("addr_reused", False), ("reuse_value", None),
    ("rb_entry", None),
    ("prediction", None), ("believed_taken", None),
    ("believed_target", None), ("resolved_final", False),
    ("last_resolution_cycle", None), ("checkpoint", None),
    ("rename_snapshot", None),
    ("current_addr", None), ("addr_known_cycle", None),
    ("forwarded_from", None),
    ("issue_cycle", None), ("issue_addr", None),
    ("last_completion_cycle", None),
    ("reuse_hit_full", False), ("reuse_hit_addr", False),
)


def __getattr__(name: str) -> Any:
    if name in ("EntryPool", "CommittedOp"):
        from ..backend import get_backend
        return getattr(get_backend().entry_pool, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
