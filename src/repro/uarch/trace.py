"""Pipeline tracing: Figure-2-style views of committed instructions.

Attach a :class:`PipelineTracer` to a core and run; the tracer records,
for every committed instruction, the cycles at which it was dispatched,
(last) issued, completed and committed, plus how its value was obtained
(executed / value-predicted / reused).  ``render()`` produces a text
table like the paper's Figure 2, with cycles relative to the first
recorded dispatch.

Example::

    core = OutOfOrderCore(ir_config(), program)
    tracer = PipelineTracer(core, limit=32)
    core.run(max_cycles=10_000)
    print(tracer.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..isa.instruction import format_instruction
from .core import OutOfOrderCore
from .entry import InflightOp


@dataclass
class TraceRecord:
    """Lifetime of one committed instruction."""

    pc: int
    text: str
    dispatch: int
    issue: Optional[int]
    complete: int
    commit: int
    executions: int
    reused: bool
    predicted: bool
    prediction_correct: Optional[bool]

    @property
    def origin(self) -> str:
        if self.reused:
            return "reused"
        if self.predicted:
            suffix = "" if self.prediction_correct else " (wrong)"
            return f"predicted{suffix}"
        return "executed"


class PipelineTracer:
    """Collects :class:`TraceRecord` objects through the commit hook."""

    def __init__(self, core: OutOfOrderCore, limit: int = 64,
                 start_cycle: int = 0):
        self.core = core
        self.limit = limit
        self.start_cycle = start_cycle
        self.records: List[TraceRecord] = []
        self._previous_hook = core.on_commit
        core.on_commit = self._record

    def _record(self, op: InflightOp, cycle: int) -> None:
        if self._previous_hook is not None:
            self._previous_hook(op, cycle)
        if cycle < self.start_cycle or len(self.records) >= self.limit:
            return
        correct = None
        if op.predicted:
            correct = op.predicted_value == op.outcome.result
        self.records.append(TraceRecord(
            pc=op.inst.pc,
            text=format_instruction(op.inst),
            dispatch=op.dispatch_cycle,
            issue=op.issue_cycle,
            complete=op.last_completion_cycle,
            commit=cycle,
            executions=op.exec_count,
            reused=op.reused,
            predicted=op.predicted,
            prediction_correct=correct,
        ))

    def detach(self) -> None:
        self.core.on_commit = self._previous_hook

    # -- rendering ------------------------------------------------------------------

    def render(self, relative: bool = True) -> str:
        """A Figure-2-style table: one committed instruction per row."""
        if not self.records:
            return "(no instructions traced)"
        origin = min(r.dispatch for r in self.records) if relative else 0
        width = max(len(r.text) for r in self.records)
        lines = [f"{'pc':10s} {'instruction':{width}s} "
                 f"{'disp':>5} {'issue':>5} {'done':>5} {'commit':>6}  how"]
        lines.append("-" * (len(lines[0]) + 12))
        for record in self.records:
            issue = (str(record.issue - origin)
                     if record.issue is not None else "-")
            lines.append(
                f"{record.pc:#010x} {record.text:{width}s} "
                f"{record.dispatch - origin:>5} {issue:>5} "
                f"{record.complete - origin:>5} "
                f"{record.commit - origin:>6}  {record.origin}")
        return "\n".join(lines)

    def chain_spread(self) -> int:
        """Cycles between the first and last commit in the trace."""
        if not self.records:
            return 0
        return (max(r.commit for r in self.records)
                - min(r.commit for r in self.records))
