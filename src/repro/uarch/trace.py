"""Pipeline tracing: Figure-2-style views of committed instructions.

Attach a :class:`PipelineTracer` to a core and run; the tracer records,
for every committed instruction, the cycles at which it was dispatched,
(last) issued, completed and committed, plus how its value was obtained
(executed / value-predicted / reused).  ``render()`` produces a text
table like the paper's Figure 2, with cycles relative to the first
recorded dispatch.

The same table can be reconstructed *offline* from a saved telemetry
event trace: ``commit`` events carry the full lifetime of each retired
instruction, and :func:`records_from_events` turns them back into
:class:`TraceRecord` rows.  Both paths share one formatting helper,
:func:`render_trace_table`, so ``repro-sim --trace`` and ``repro-trace
--figure2`` print byte-identical views of the same run.

Example::

    core = OutOfOrderCore(ir_config(), program)
    tracer = PipelineTracer(core, limit=32)
    core.run(max_cycles=10_000)
    print(tracer.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..isa.instruction import format_instruction
from .core import OutOfOrderCore
from .entry import CommittedOp


@dataclass
class TraceRecord:
    """Lifetime of one committed instruction."""

    pc: int
    text: str
    dispatch: int
    issue: Optional[int]
    complete: int
    commit: int
    executions: int
    reused: bool
    predicted: bool
    prediction_correct: Optional[bool]

    @property
    def origin(self) -> str:
        if self.reused:
            return "reused"
        if self.predicted:
            suffix = "" if self.prediction_correct else " (wrong)"
            return f"predicted{suffix}"
        return "executed"

    @classmethod
    def from_event(cls, event) -> "TraceRecord":
        """Rebuild a record from a saved telemetry ``commit`` event."""
        data = event.data
        return cls(
            pc=event.pc,
            text=data.get("text", ""),
            dispatch=data.get("dispatch", event.cycle),
            issue=data.get("issue"),
            complete=data.get("complete", event.cycle),
            commit=event.cycle,
            executions=data.get("executions", 0),
            reused=bool(data.get("reused")),
            predicted=bool(data.get("predicted")),
            prediction_correct=data.get("correct"),
        )


def records_from_events(events: Iterable) -> List[TraceRecord]:
    """The :class:`TraceRecord` rows of a telemetry event stream."""
    return [TraceRecord.from_event(event) for event in events
            if event.kind == "commit"]


_HEADERS = ("pc", "instruction", "disp", "issue", "done", "commit", "how")
_RIGHT_ALIGNED = frozenset((2, 3, 4, 5))  # the cycle-number columns


def render_trace_table(records: Sequence[TraceRecord],
                       relative: bool = True) -> str:
    """Format records as the Figure-2 table.

    Column widths are computed over headers *and* cells, so arbitrarily
    long disassembly strings (or a text column narrower than its
    header) can never shear the columns out of alignment.
    """
    if not records:
        return "(no instructions traced)"
    origin = min(r.dispatch for r in records) if relative else 0
    rows = []
    for r in records:
        issue = str(r.issue - origin) if r.issue is not None else "-"
        rows.append((f"{r.pc:#010x}", r.text, str(r.dispatch - origin),
                     issue, str(r.complete - origin),
                     str(r.commit - origin), r.origin))
    widths = [max(len(_HEADERS[col]), max(len(row[col]) for row in rows))
              for col in range(len(_HEADERS))]

    def fmt(cells) -> str:
        parts = []
        for col, cell in enumerate(cells):
            if col in _RIGHT_ALIGNED:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return "  ".join(parts).rstrip()

    full_width = sum(widths) + 2 * (len(_HEADERS) - 1)
    lines = [fmt(_HEADERS), "-" * full_width]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


class PipelineTracer:
    """Collects :class:`TraceRecord` objects through the commit hook."""

    def __init__(self, core: OutOfOrderCore, limit: int = 64,
                 start_cycle: int = 0):
        self.core = core
        self.limit = limit
        self.start_cycle = start_cycle
        self.records: List[TraceRecord] = []
        self._previous_hook = core.on_commit
        core.on_commit = self._record

    def _record(self, op: CommittedOp, cycle: int) -> None:
        if self._previous_hook is not None:
            self._previous_hook(op, cycle)
        if cycle < self.start_cycle or len(self.records) >= self.limit:
            return
        correct = None
        if op.predicted:
            correct = op.predicted_value == op.outcome.result
        self.records.append(TraceRecord(
            pc=op.inst.pc,
            text=format_instruction(op.inst),
            dispatch=op.dispatch_cycle,
            issue=op.issue_cycle,
            complete=op.last_completion_cycle,
            commit=cycle,
            executions=op.exec_count,
            reused=op.reused,
            predicted=op.predicted,
            prediction_correct=correct,
        ))

    def detach(self) -> None:
        self.core.on_commit = self._previous_hook

    # -- rendering ------------------------------------------------------------------

    def render(self, relative: bool = True) -> str:
        """A Figure-2-style table: one committed instruction per row."""
        return render_trace_table(self.records, relative=relative)

    def chain_spread(self) -> int:
        """Cycles between the first and last commit in the trace."""
        if not self.records:
            return 0
        return (max(r.commit for r in self.records)
                - min(r.commit for r in self.records))
