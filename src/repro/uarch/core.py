"""The out-of-order timing core integrating VP and IR.

Pipeline structure mirrors Figure 1/2 of the paper: fetch -> decode/rename/
dispatch -> (out-of-order issue/execute) -> commit, over the Table 1
machine.  Architectural semantics are computed *at dispatch* against a
checkpointed speculative state (the SimpleScalar ``sim-outorder`` design),
so the model runs wrong paths with real values; the back end models timing
and — under value prediction — the propagation of *mispredicted* values:
each execution re-evaluates its operation over its operands' current
(possibly wrong) values, so spurious branch resolutions and selective
re-execution behave like the hardware the paper describes.

Key timing conventions (see also :mod:`repro.uarch.entry`):

* a value produced in cycle ``r`` can feed an execution issuing in ``r+1``;
* value-predicted / reused values are available at the dispatch cycle;
* an instruction commits no earlier than the cycle after it completed and
  became non-value-speculative;
* a verified misprediction corrects dependents ``verify_latency`` cycles
  after the verifying execution completes, and only the first instruction
  of a dependent chain pays that penalty (Section 4.1.3).

Scheduling is event-driven and dynamic state is structure-of-arrays (see
``docs/internals.md``): completions and resolutions live on a heap keyed
by cycle, issue examines only the wakeup queue of instructions whose
state can actually change (not the whole ROB), every static instruction
is pre-decoded once into a flat :class:`~repro.uarch.decode.StaticOp`
record, and all per-instruction dynamic state lives in the preallocated
parallel arrays of an :class:`~repro.uarch.entry.EntryPool` — the ROB,
LSQ, rename map, event heap and wakeup queue hold small integer entry
ids (or ``(seq << SEQ_SHIFT) | id`` tokens where staleness is possible),
so the steady state allocates no objects per instruction.  When the
machine is provably idle until a known future cycle the core
fast-forwards the cycle counter instead of stepping through empty
cycles.  All of it is timing-transparent: the statistics are
byte-identical to the object-per-entry core's (``tests/golden`` pins
this).
"""

from __future__ import annotations

import gc
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..backend import get_backend
from ..functional.compiled import CompiledProgram, HALT
from ..functional.simulator import FunctionalSimulator, SimulationError
from ..isa.opcodes import (
    NUM_REGS,
    REG_HI,
    div_hi_lo,
    mult_hi_lo,
    u32,
)
from ..isa.program import Program
from ..metrics.profiling import CoreProfile
from ..metrics.stats import SimStats
from ..reuse.scheme import ReuseDecision, ReuseEngine
from ..vp.predictors import make_predictor
from .branch_predictor import BranchPredictorUnit
from .cache import PortTracker, SetAssocCache
from .config import BranchPolicy, IRValidation, MachineConfig, ReexecPolicy
from .decode import DecodeTable
from .entry import IDX_MASK, REG_MASK, REG_SHIFT, SEQ_SHIFT
from .fetch import FetchUnit
from .functional_units import FunctionalUnits
from ._kernel import events as _kernel_events
from ._kernel import ffexec as _kernel_ffexec
from .spec_state import SpeculativeState

# Event kinds and the "no pending activity" bound are kernel constants
# (repro.uarch._kernel.events); the aliases keep the historical names
# the tests import.  They are plain ints, identical on every backend.
_EVENT_COMPLETE = _kernel_events.EVENT_COMPLETE
_EVENT_RESOLVE = _kernel_events.EVENT_RESOLVE
_FAR_FUTURE = _kernel_events.FAR_FUTURE

# Consumer edges pack ((seq << SEQ_SHIFT | id) << REG_SHIFT) | reg; the
# packed entry's upper bits are the producer-recorded seq of the consumer.
_CONS_SEQ_SHIFT = REG_SHIFT + SEQ_SHIFT


class OutOfOrderCore:
    """Cycle-stepped 4-way out-of-order processor model."""

    def __init__(self, config: MachineConfig, program: Program):
        self.config = config
        self.program = program
        self.stats = SimStats(config_name=config.name)

        self.decode = DecodeTable(program)
        self.predictor = BranchPredictorUnit(config.bpred)
        self.fetch_unit = FetchUnit(config, self.decode, self.predictor)
        self.fus = FunctionalUnits(config)
        self.dcache = SetAssocCache(config.dcache, "dcache")
        self.dcache_ports = PortTracker(config.dcache.ports)
        self.spec = SpeculativeState(program)

        # Kernel structures (entry pool, event heap, wakeup queue) come
        # from the active backend — interpreted sources or the mypyc
        # extension — bound here once; see repro.backend.  Late binding
        # (at construction, not import) is what lets tests and the CLI
        # switch backends per process without re-importing this module.
        backend = self.backend = get_backend()

        # All dynamic instruction state lives in the entry pool; the
        # sizing covers the ROB plus the retired-but-pinned tail (slots
        # kept alive by live consumers' producer edges) without growth
        # in the steady state.
        pool = self.pool = backend.entry_pool.EntryPool(
            config.rob_size * 4 + 32)
        # One-hop bindings of every pool array the hot path touches.
        # ``_grow`` extends the lists in place, so these stay valid.
        self.e_seq = pool.seq_of
        self.e_meta = pool.meta
        self.e_outcome = pool.outcome
        self.e_dispatch = pool.dispatch_cycle
        self.e_is_load = pool.is_load
        self.e_is_store = pool.is_store
        self.e_is_mem = pool.is_mem
        self.e_is_control = pool.is_control
        self.e_whl = pool.writes_hi_lo
        self.e_producers = pool.producers
        self.e_src_values = pool.src_values
        self.e_consumers = pool.consumers
        self.e_refs = pool.refs
        self.e_retired = pool.retired
        self.e_completed = pool.completed
        self.e_ready = pool.ready_cycle
        self.e_value_ready = pool.value_ready_cycle
        self.e_hi_ready = pool.hi_ready_cycle
        self.e_nonspec = pool.nonspec_cycle
        self.e_current = pool.current_value
        self.e_current_hi = pool.current_hi
        self.e_exec_count = pool.exec_count
        self.e_issued = pool.issued
        self.e_completes_at = pool.completes_at
        self.e_irv = pool.issue_read_values
        self.e_used_values = pool.used_values
        self.e_buf_a = pool.buf_a
        self.e_buf_b = pool.buf_b
        self.e_used_addr = pool.used_addr
        self.e_stale = pool.stale
        self.e_reexec = pool.reexec_earliest
        self.e_in_iq = pool.in_issue_queue
        self.e_predicted = pool.predicted
        self.e_predicted_value = pool.predicted_value
        self.e_addr_predicted = pool.addr_predicted
        self.e_predicted_addr = pool.predicted_addr
        self.e_reused = pool.reused
        self.e_addr_reused = pool.addr_reused
        self.e_reuse_value = pool.reuse_value
        self.e_prediction = pool.prediction
        self.e_btaken = pool.believed_taken
        self.e_btarget = pool.believed_target
        self.e_resolved = pool.resolved_final
        self.e_last_resolution = pool.last_resolution_cycle
        self.e_checkpoint = pool.checkpoint
        self.e_rename_snapshot = pool.rename_snapshot
        self.e_current_addr = pool.current_addr
        self.e_addr_known = pool.addr_known_cycle
        self.e_fwd_from = pool.forwarded_from
        self.e_issue_cycle = pool.issue_cycle
        self.e_issue_addr = pool.issue_addr
        self.e_last_completion = pool.last_completion_cycle
        self.e_hit_full = pool.reuse_hit_full
        self.e_hit_addr = pool.reuse_hit_addr

        # Rename map: architectural reg -> token of the youngest in-flight
        # producer (None when the architectural value is current).  Stale
        # tokens of committed-and-recycled producers are filtered by the
        # seq validation at dispatch.
        self.rename: List[Optional[int]] = [None] * NUM_REGS
        self.rob: Deque[int] = deque()
        self.lsq: Deque[int] = deque()
        # Completion-event heap and wakeup queue are kernel structures;
        # the core borrows their backing lists (``events`` /
        # ``issue_queue``) for local-variable-speed scans and routes the
        # invariant-bearing mutations through the kernel methods.
        self._eventq = backend.events.EventQueue()
        self.events: List[Tuple[int, int, int, int]] = self._eventq.heap
        # Wakeup queue of tokens: the only instructions issue examines.
        # An op is resident from dispatch until it issues or can never
        # issue again; re-executions re-enter through _queue_for_issue.
        # Kept in seq order (token order == seq order; re-adds mark the
        # queue dirty and it is re-sorted at the top of _issue) so issue
        # priority matches ROB order exactly.
        self._wakeq = backend.events.WakeupQueue()
        self.issue_queue: List[int] = self._wakeq.tokens

        self.cycle = 0
        self.seq = 0
        self.unresolved_control = 0
        self.halt_dispatched: Optional[int] = None  # token
        self.halted = False

        # Cycle-skip fast-forward (disable for A/B timing experiments;
        # statistics are identical either way).
        self.fast_forward = True
        self.profile: Optional[CoreProfile] = None
        # Observation-only telemetry sink (enable_telemetry); never feeds
        # a value back, so stats are identical with or without it.
        self.telemetry = None

        self.vp = make_predictor(config.vp) if config.vp.enabled else None
        self.ir: Optional[ReuseEngine] = (
            ReuseEngine(config.ir, self.stats) if config.ir.enabled else None)
        if self.ir is not None:
            self.ir.bind_pool(pool)
        # Lower the pool's reset gates to this machine's feature set: a
        # core without VP (or IR) never writes those field groups, so
        # slot recycling need not touch them.  The golden byte-identity
        # corpus is the safety net for this reasoning — a missed reset
        # changes observable behavior.
        pool.reset_vp = self.vp is not None
        pool.reset_ir = self.ir is not None
        pool.reset_reexec = self.vp is not None or self.ir is not None
        self.verify_latency = config.vp.verify_latency if config.vp.enabled \
            else 0
        # Without value prediction and without late-validated reuse, no
        # mechanism can inject a wrong value: every execution reads exactly
        # the dispatch-time (oracle) operands, so completion can return the
        # dispatch outcome and finalization can skip the value comparisons.
        # (Timing-only replays — e.g. a load whose forwarding relationship
        # changes when a reused store address resolves — still occur and
        # still go through the stale/re-execution machinery.)
        self._pure_values = not (
            config.vp.enabled
            or (config.ir.enabled
                and config.ir.validation == IRValidation.LATE))

        if config.vp.enabled and config.ir.enabled and not config.hybrid:
            raise ValueError(
                "VP and IR are separate techniques in the paper; enable "
                "one at a time (or set hybrid=True for the combined "
                "scheme the paper's conclusion suggests)")

        self.oracle: Optional[FunctionalSimulator] = (
            FunctionalSimulator(program) if config.verify_commits else None)

        # Optional observer invoked as on_commit(view, cycle) for every
        # committed instruction (tracing, examples, custom statistics);
        # the view is a CommittedOp snapshot built only when a hook is
        # attached, so the detached hot path never pays for it.
        self.on_commit = None

    # ------------------------------------------------------------------ run --

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until halt commits or a budget is exhausted."""
        step = self.step
        fast_forward = self._fast_forward
        stats = self.stats
        # The entry pool holds dynamic state in flat arrays and the
        # dataflow edges are plain ints, so the cyclic collector has
        # nothing to reclaim here — pause it for the run to avoid the
        # periodic scan churn over the long-lived pool lists.
        restore_gc = gc.isenabled()
        if restore_gc:
            gc.disable()
        try:
            while not self.halted:
                if max_cycles is not None and self.cycle >= max_cycles:
                    break
                if (max_instructions is not None
                        and stats.committed >= max_instructions):
                    break
                step()
                if self.fast_forward:
                    fast_forward(max_cycles)
        finally:
            if restore_gc:
                gc.enable()
        self._finalize_stats()
        if self.telemetry is not None:
            self.telemetry.finalize(self)
        return self.stats

    def skip(self, instructions: int) -> None:
        """Functionally fast-forward before timing simulation starts.

        Mirrors the paper's warm-up skip (1-2.5 billion instructions there).
        Must be called before the first :meth:`step`.
        """
        if self.cycle or self.rob:
            raise SimulationError("skip() must precede timing simulation")
        # Fast-forward closures mutate the speculative state exactly like
        # the interpreted loop did, but with no ExecOutcome allocation;
        # like before, the halt is left unexecuted for the front end.
        compiled = CompiledProgram(self.program)
        pc, executed, status = self.backend.ffexec.run_ff(
            compiled.ff_entry, HALT, self.spec,
            self.program.entry_point, instructions, False)
        if status == _kernel_ffexec.FF_BAD_PC:
            raise SimulationError(f"skip ran off program at {pc:#x}")
        self.fetch_unit.fetch_pc = pc
        if self.oracle is not None:
            self.oracle.skip(executed)

    def restore_warm(self, warm) -> None:
        """Adopt a warm-state checkpoint in place of :meth:`skip`.

        *warm* must come from :func:`repro.functional.checkpoint.capture`
        over the same program with the intended skip count (the store's
        content addressing guarantees this).  Afterwards the core is
        indistinguishable from one that just ran ``skip(warm.skip)``
        cold: speculative state holds the warm image, fetch starts at the
        first unexecuted instruction (the halt itself when the warm-up
        ran into one — the front end dispatches it, exactly like the
        cold path), and the commit-verify oracle sits at the same point.
        """
        if self.cycle or self.rob:
            raise SimulationError(
                "restore_warm() must precede timing simulation")
        self.spec.regs[:] = warm.regs
        self.spec.memory = warm.make_memory()
        self.fetch_unit.fetch_pc = warm.pc
        if self.oracle is not None:
            self.oracle.restore(warm)

    def step(self) -> None:
        """Advance one cycle (reverse pipeline order)."""
        if self.profile is not None:
            return self._step_profiled()
        self.cycle += 1
        # Phase calls are guarded by their work sources: each phase is a
        # no-op on an empty structure, so skipping the call is pure
        # wallclock (the empty-cycle cost matters during stalls).
        if self.rob:
            self._commit()
        events = self.events
        if events and events[0][0] <= self.cycle:
            self._process_events()
        if self.issue_queue:
            self._issue()
        fetch = self.fetch_unit
        if fetch.queue:
            self._dispatch()
        fetch.step(self.cycle)
        self.stats.cycles = self.cycle
        if self.telemetry is not None:
            self.telemetry.on_cycle(self)

    def _step_profiled(self) -> None:
        """step() with per-phase wallclock accounting (``--profile``)."""
        profile = self.profile
        self.cycle += 1
        profile.cycles_stepped += 1
        profile.time_phase("commit", self._commit)
        profile.time_phase("events", self._process_events)
        profile.time_phase("issue", self._issue)
        profile.time_phase("dispatch", self._dispatch)
        profile.time_phase("fetch",
                           lambda: self.fetch_unit.step(self.cycle))
        self.stats.cycles = self.cycle
        if self.telemetry is not None:
            self.telemetry.on_cycle(self)

    def enable_profiling(self) -> CoreProfile:
        """Attach (and return) a :class:`CoreProfile` for this run."""
        self.profile = CoreProfile()
        return self.profile

    def enable_telemetry(self, sink=None, *, interval: Optional[int] = None,
                         trace_capacity: Optional[int] = None,
                         events: bool = True):
        """Attach (and return) a telemetry sink for this run.

        Pass a ready :class:`~repro.telemetry.sink.TelemetrySink`, or
        let this build one from *interval* / *trace_capacity* /
        *events*.  Off by default; the golden corpus pins the detached
        core and a transparency test pins statistic byte-identity with
        the sink attached.
        """
        if sink is None:
            from ..telemetry.sink import TelemetrySink
            kwargs = {"events": events}
            if interval is not None:
                kwargs["interval"] = interval
            if trace_capacity is not None:
                kwargs["trace_capacity"] = trace_capacity
            sink = TelemetrySink(**kwargs)
        self.telemetry = sink
        if self.ir is not None:
            self.ir.telemetry = sink
        return sink

    # ---------------------------------------------------------- fast-forward --

    def _fast_forward(self, max_cycles: Optional[int]) -> None:
        """Jump over cycles in which provably nothing can happen.

        Only the cycle counter moves: by construction no event fires, no
        instruction becomes issuable/committable and the front end cannot
        advance strictly before the target, so stepping through the gap
        would only have burned wallclock.  Under-estimating the jump is
        always safe (the next step re-derives it).
        """
        if self.halted:
            return
        target = self._next_activity_cycle()
        if max_cycles is not None and target > max_cycles + 1:
            # Land exactly on the budget so stats.cycles matches a core
            # that stepped every empty cycle up to the limit.
            target = max_cycles + 1
        elif target >= _FAR_FUTURE:
            return  # unbounded run with no pending work: spin, as before
        if target <= self.cycle + 1:
            return
        skipped = target - 1 - self.cycle
        self.cycle = target - 1
        self.stats.cycles = self.cycle
        if self.profile is not None:
            self.profile.cycles_skipped += skipped
            self.profile.skips += 1
        if self.telemetry is not None:
            # Flush interval boundaries crossed by the jump.  The skipped
            # span is provably idle, so the boundary rows carry zero
            # deltas and the (unchanged) current occupancies — exactly
            # what stepping through the gap would have sampled.
            self.telemetry.on_cycle(self)

    def _next_activity_cycle(self) -> int:
        """Earliest future cycle at which machine state can change.

        Returns ``cycle + 1`` ("no skip") whenever anything might happen
        next cycle; every subsystem contributes a conservative bound:

        * the event heap's top entry (never skip past a scheduled event);
        * fetch: imminent unless stalled (bound: ``stall_until``), out of
          queue room, or blocked on a redirect (event-driven);
        * dispatch: imminent when the queue head clears the ROB/LSQ/
          checkpoint limits (unblocking is commit- or event-driven);
        * commit: the head's ``nonspec_cycle + 1`` once it is completed
          and resolved;
        * the wakeup queue: a pending re-execution bounds at
          ``reexec_earliest``; an op whose operands are all broadcast is
          imminent; one waiting on an in-flight producer is covered by
          that producer's completion event (or by the producer itself,
          which sits earlier in this same queue).
        """
        no_skip = self.cycle + 1
        bound = _FAR_FUTURE

        events = self.events
        if events:
            bound = events[0][0]
            if bound <= no_skip:
                return no_skip

        fetch = self.fetch_unit
        if not fetch.blocked and fetch.room() > 0:
            if fetch.stall_until > no_skip:
                if fetch.stall_until < bound:
                    bound = fetch.stall_until
            else:
                return no_skip

        queue = fetch.queue
        if queue and self.halt_dispatched is None:
            head_op = queue[0][0]
            if len(self.rob) < self.config.rob_size \
                    and (not head_op.is_mem
                         or len(self.lsq) < self.config.lsq_size) \
                    and (not head_op.needs_checkpoint
                         or self.unresolved_control
                         < self.config.max_unresolved_branches):
                return no_skip  # head is dispatchable next cycle

        e_completed = self.e_completed
        e_nonspec = self.e_nonspec
        e_reexec = self.e_reexec
        rob = self.rob
        if rob:
            head = rob[0]
            if e_completed[head] and e_nonspec[head] is not None \
                    and (not self.e_is_control[head]
                         or self.e_resolved[head]):
                commit_at = e_nonspec[head] + 1
                if commit_at <= no_skip:
                    return no_skip
                if commit_at < bound:
                    bound = commit_at

        e_seq = self.e_seq
        e_issued = self.e_issued
        e_whl = self.e_whl
        e_hi_ready = self.e_hi_ready
        e_value_ready = self.e_value_ready
        for tok in self.issue_queue:
            i = tok & IDX_MASK
            if e_seq[i] != tok >> SEQ_SHIFT or e_issued[i]:
                continue  # squashed (slot recycled) or in flight
            reexec = e_reexec[i]
            if e_completed[i] and reexec is None:
                continue
            if reexec is not None:
                if reexec <= no_skip:
                    return no_skip
                if reexec < bound:
                    bound = reexec
                continue
            # Never executed: waiting on operands (or disambiguation).
            if self.e_is_load[i] and (self.e_addr_reused[i]
                                      or self.e_addr_predicted[i]):
                return no_skip  # can issue on the predicted address
            waiting_on_event = False
            for reg, p in self.e_producers[i].items():
                ready = (e_hi_ready[p] if reg == REG_HI and e_whl[p]
                         else e_value_ready[p])
                if ready is None:
                    waiting_on_event = True
                    break
            if not waiting_on_event:
                return no_skip  # all operands broadcast: issue imminent
        return bound

    # ---------------------------------------------------------------- events --

    def _schedule(self, cycle: int, kind: int, i: int) -> None:
        self._eventq.push(cycle, self.e_seq[i], kind, i)

    def _process_events(self) -> None:
        events = self.events
        cycle = self.cycle
        profile = self.profile
        heappop = self._eventq.pop
        e_seq = self.e_seq
        e_completes_at = self.e_completes_at
        e_issued = self.e_issued
        while events and events[0][0] <= cycle:
            _, seq, kind, i = heappop()
            if profile is not None:
                profile.events_processed += 1
            if e_seq[i] != seq:
                continue  # the op was squashed; the slot may be recycled
            if kind == _EVENT_COMPLETE:
                if e_completes_at[i] == cycle and e_issued[i]:
                    self._on_complete(i)
            elif kind == _EVENT_RESOLVE:
                if not self.e_resolved[i]:
                    taken, target = self._final_resolution(i)
                    self._resolve_control(i, taken, target, final=True)

    # --------------------------------------------------------------- dispatch --

    def _dispatch(self) -> None:
        dispatched = 0
        fetch = self.fetch_unit
        while dispatched < self.config.decode_width and fetch.queue:
            fetched = fetch.queue[0]
            meta = fetched[0]
            if fetched[2] >= self.cycle:
                break  # fetched this very cycle; decode next cycle
            if self.halt_dispatched is not None:
                break
            if len(self.rob) >= self.config.rob_size:
                break
            if meta.is_mem and len(self.lsq) >= self.config.lsq_size:
                break
            if meta.needs_checkpoint and (self.unresolved_control
                                          >= self.config
                                          .max_unresolved_branches):
                break
            fetch.pop()
            self._dispatch_one(fetched)
            dispatched += 1
            self.stats.dispatched += 1
            if meta.is_halt:
                break
            # A reused branch that squashed at dispatch cleared the queue,
            # which ends this loop naturally.

    def _dispatch_one(self, fetched) -> int:
        meta = fetched[0]
        pool = self.pool
        cycle = self.cycle
        # Source values must be read *before* exec_fn mutates the
        # speculative state.
        self.seq = seq = self.seq + 1
        i = pool.alloc(seq, meta, None, cycle)
        regs = self.spec.regs
        src_values = self.e_src_values[i]
        tok = (seq << SEQ_SHIFT) | i
        rename = self.rename
        producers = self.e_producers[i]
        if meta.src_regs:
            # One walk does both rename-stage jobs: snapshot the operand
            # values (before exec_fn mutates the speculative state — the
            # pool state read here is not touched by execution) and link
            # the producer edges.
            e_seq = self.e_seq
            e_retired = self.e_retired
            e_nonspec = self.e_nonspec
            e_completed = self.e_completed
            e_consumers = self.e_consumers
            e_refs = self.e_refs
            for reg in meta.src_regs:
                src_values[reg] = regs[reg]
                ptok = rename[reg]
                if ptok is None:
                    continue
                p = ptok & IDX_MASK
                if e_seq[p] != ptok >> SEQ_SHIFT:
                    continue  # producer committed, its slot was recycled
                if e_retired[p]:
                    # Committed producer: its final value is this op's
                    # dispatch-time src value, so the edge carries no
                    # information — read through src_values instead.
                    continue
                if reg not in producers:
                    producers[reg] = p
                    e_refs[p] += 1
                if e_nonspec[p] is None or not e_completed[p]:
                    e_consumers[p].append((tok << REG_SHIFT) | reg)
        self.e_outcome[i] = meta.exec_fn(self.spec)
        for reg in meta.dest_regs:
            rename[reg] = tok

        self.rob.append(i)
        if meta.is_mem:
            self.lsq.append(i)

        if self.telemetry is not None:
            self.telemetry.emit("dispatch", cycle, seq, meta.pc,
                                {"opcode": meta.opcode.name})

        if meta.is_control:
            self._dispatch_control(i, fetched[1])
        if not meta.executes:
            self._complete_at_dispatch(i)
        if meta.is_halt:
            self.halt_dispatched = tok

        if self.ir is not None and meta.executes:
            self._apply_reuse(i)
        if self.vp is not None and meta.executes and not meta.is_control \
                and not self.e_reused[i]:
            self._apply_value_prediction(i)

        if meta.executes and not self.e_completed[i]:
            # Enter the wakeup queue only if issue is at least conceivable:
            # an op with a producer that has not completed parks outside
            # the queue until that producer's completion event wakes it.
            # Loads with a reused/predicted address can issue without the
            # base register, so they always enter.
            park = False
            if not (meta.is_load and (self.e_addr_reused[i]
                                      or self.e_addr_predicted[i])):
                e_whl = self.e_whl
                for reg, p in producers.items():
                    if reg == REG_HI and e_whl[p]:
                        ready = self.e_hi_ready[p]
                    else:
                        ready = self.e_value_ready[p]
                    if ready is None:
                        park = True
                        break
            if not park:
                self._queue_for_issue(i)
        return i

    def _dispatch_control(self, i: int, prediction) -> None:
        meta = self.e_meta[i]
        self.e_prediction[i] = prediction
        if meta.is_branch:
            self.e_btaken[i] = prediction.taken
            self.e_btarget[i] = meta.target
        else:
            self.e_btaken[i] = True
            self.e_btarget[i] = (prediction.target
                                 if prediction else meta.target)
        if meta.needs_checkpoint:
            self.e_checkpoint[i] = self.spec.take_checkpoint(meta.pc)
            self.e_rename_snapshot[i] = self.rename.copy()
            self.unresolved_control += 1
        else:
            # Direct j/jal: fetch followed the target; nothing to resolve.
            self.e_resolved[i] = True
            self.e_last_resolution[i] = self.cycle

    def _complete_at_dispatch(self, i: int) -> None:
        """Non-executing ops (j/jal/nop/halt) are done at dispatch."""
        cycle = self.cycle
        self.e_completed[i] = True
        buf = self.e_buf_a[i]  # empty: the slot was freshly allocated
        buf.update(self.e_src_values[i])
        self.e_used_values[i] = buf
        self.e_last_completion[i] = cycle
        self.e_ready[i] = cycle
        self.e_value_ready[i] = cycle
        self.e_current[i] = self.e_outcome[i].result
        self.e_nonspec[i] = cycle

    # -- VP at dispatch --------------------------------------------------------------

    def _apply_value_prediction(self, i: int) -> None:
        meta, outcome = self.e_meta[i], self.e_outcome[i]
        cycle = self.cycle
        if self.config.vp.predict_results and meta.has_dest \
                and outcome.result is not None and not meta.is_store:
            predicted = self.vp.predict_result(meta.pc, outcome.result,
                                               key=meta.vp_result_key)
            if predicted is not None:
                self.e_predicted[i] = True
                self.e_predicted_value[i] = predicted
                self.e_value_ready[i] = cycle
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_predict", cycle, self.e_seq[i], meta.pc,
                        {"what": "result", "value": predicted})
        if meta.is_mem:
            predicted_addr = self.vp.predict_address(meta.pc,
                                                     outcome.mem_addr,
                                                     key=meta.vp_addr_key)
            if predicted_addr is not None:
                self.e_addr_predicted[i] = True
                self.e_predicted_addr[i] = predicted_addr
                self.e_current_addr[i] = predicted_addr
                if meta.is_store:
                    self.e_addr_known[i] = cycle  # speculative
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_predict", cycle, self.e_seq[i], meta.pc,
                        {"what": "address", "value": predicted_addr})

    # -- IR at dispatch --------------------------------------------------------------

    def _apply_reuse(self, i: int) -> None:
        decision = self.ir.test(i, self.cycle, self._store_conflict)
        if not decision.hit:
            return
        self.e_hit_full[i] = decision.full
        self.e_hit_addr[i] = decision.address
        if self.config.ir.validation == IRValidation.EARLY:
            self._apply_reuse_early(i, decision)
        else:
            self._apply_reuse_late(i, decision)

    def _apply_reuse_early(self, i: int, decision: ReuseDecision) -> None:
        entry = decision.entry
        cycle = self.cycle
        meta = self.e_meta[i]
        if decision.address:
            self.e_addr_reused[i] = True
            self.e_current_addr[i] = entry.address
            self.e_addr_known[i] = cycle  # non-speculative
        if not decision.full:
            return
        self.e_reused[i] = True
        self.e_reuse_value[i] = entry.result
        self.e_completed[i] = True
        buf = self.e_buf_a[i]  # empty: reuse is tested at dispatch
        buf.update(self.e_src_values[i])
        self.e_used_values[i] = buf
        self.e_last_completion[i] = cycle
        self.e_ready[i] = cycle
        self.e_value_ready[i] = cycle
        self.e_hi_ready[i] = cycle
        self.e_nonspec[i] = cycle
        self.e_current[i] = entry.result
        self.e_current_hi[i] = entry.result_hi
        if meta.is_load:
            self.e_used_addr[i] = entry.address
        if self.config.verify_commits and not meta.is_control:
            if entry.result != self.e_outcome[i].result:
                raise SimulationError(
                    f"reuse produced wrong value at {meta.inst}")
        if meta.is_branch:
            self.stats.reused_branches += 1
            self._resolve_control(i, bool(entry.result), meta.target,
                                  final=True)
        elif meta.is_indirect:
            self.e_current_addr[i] = entry.result
            self.stats.reused_branches += 1
            self._resolve_control(i, True, entry.result, final=True)

    def _apply_reuse_late(self, i: int, decision: ReuseDecision) -> None:
        """Figure 3's *late* experiment: hits act like perfect predictions."""
        entry = decision.entry
        meta = self.e_meta[i]
        if decision.address:
            self.e_addr_predicted[i] = True
            self.e_predicted_addr[i] = entry.address
            self.e_current_addr[i] = entry.address
            if meta.is_store:
                self.e_addr_known[i] = self.cycle
        if decision.full:
            # The hit marker feeds same-cycle dependence chaining in the
            # reuse test: detection is identical to early mode, only the
            # validation point moves to the execute stage.
            self.e_reuse_value[i] = entry.result
            if meta.has_dest:
                self.e_predicted[i] = True
                self.e_predicted_value[i] = entry.result
                self.e_value_ready[i] = self.cycle

    # ------------------------------------------------------------------- issue --

    def _queue_for_issue(self, i: int) -> None:
        """Add slot *i* to the wakeup queue (idempotent)."""
        if self.e_in_iq[i]:
            return
        self._wakeq.add((self.e_seq[i] << SEQ_SHIFT) | i)
        self.e_in_iq[i] = True

    def _issue(self) -> None:
        queue = self.issue_queue
        if not queue:
            return
        # Re-adds of older ops mark the queue dirty; the kernel re-sorts
        # once here (token order == seq order) before the scan.
        self._wakeq.ensure_sorted()
        cycle = self.cycle
        width = self.config.issue_width
        stats = self.stats
        ports = self.dcache_ports
        pool_list = self.fus.pool_list
        profile = self.profile
        e_seq = self.e_seq
        e_issued = self.e_issued
        e_completed = self.e_completed
        e_reexec = self.e_reexec
        e_in_iq = self.e_in_iq
        e_meta = self.e_meta
        e_is_store = self.e_is_store
        e_producers = self.e_producers
        e_whl = self.e_whl
        e_hi_ready = self.e_hi_ready
        e_value_ready = self.e_value_ready
        lsq = self.lsq
        issued = 0
        keep: List[int] = []
        keep_append = keep.append
        for index, tok in enumerate(queue):
            if issued >= width:
                keep.extend(queue[index:])
                break
            if profile is not None:
                profile.issue_queue_scanned += 1
            i = tok & IDX_MASK
            # Drop entries that can never want issue again: squashed ops
            # (stale token: the slot was freed or recycled), in-flight
            # executions (completion re-queues via reexec), and completed
            # ops with no pending re-execution.
            if e_seq[i] != tok >> SEQ_SHIFT:
                continue  # squashed: in_issue_queue was reset by free()
            if e_issued[i] or (e_completed[i] and e_reexec[i] is None):
                e_in_iq[i] = False
                continue
            # The _wants_issue gates of the scan-driven core:
            if self.e_dispatch[i] >= cycle:
                keep_append(tok)
                continue
            reexec = e_reexec[i]
            if reexec is not None and cycle < reexec:
                keep_append(tok)
                continue
            meta = e_meta[i]
            if meta.is_load:
                address = self._load_address(i)
                if address is None:
                    p = e_producers[i].get(meta.rs)
                    if reexec is None and p is not None \
                            and (e_hi_ready[p] if meta.rs == REG_HI
                                 and e_whl[p]
                                 else e_value_ready[p]) is None:
                        # Park: the base register's producer has not even
                        # completed, so its completion event (which wakes
                        # consumers) is the next time this can change.
                        e_in_iq[i] = False
                    else:
                        keep_append(tok)
                    continue
                # Table 1: loads execute only after all preceding store
                # addresses are known (reused/predicted count as known).
                gated = False
                seq = e_seq[i]
                for s in lsq:
                    if e_seq[s] >= seq:
                        break
                    if not e_is_store[s]:
                        continue
                    known = self.e_addr_known[s]
                    if known is None or known >= cycle:
                        gated = True
                        break
                if gated:
                    keep_append(tok)
                    continue
                forwarding = self._forwarding_store(i, address)
                if forwarding is not None:
                    # Need the store's data before it can be bypassed.
                    data_reg = e_meta[forwarding].rd
                    p = e_producers[forwarding].get(data_reg)
                    if p is not None:
                        ready = (e_hi_ready[p] if data_reg == REG_HI
                                 and e_whl[p] else e_value_ready[p])
                        if ready is None or ready >= cycle:
                            keep_append(tok)
                            continue
                needs_port = forwarding is None
            else:
                blocked = False
                park = False
                for reg, p in e_producers[i].items():
                    if reg == REG_HI and e_whl[p]:
                        ready = e_hi_ready[p]
                    else:
                        ready = e_value_ready[p]
                    if ready is None:
                        # Producer never completed: its completion event
                        # wakes consumers, so leave the queue entirely.
                        # (Completed re-exec candidates stay resident —
                        # the wake walk skips completed consumers.)
                        park = reexec is None
                        blocked = True
                        break
                    if ready >= cycle:
                        blocked = True
                        break
                if blocked:
                    if park:
                        e_in_iq[i] = False
                    else:
                        keep_append(tok)
                    continue
                address = None
                forwarding = None
                needs_port = False
            fu_pool = pool_list[meta.op_class_index]
            busy = fu_pool.busy_until
            unit = -1
            for u in range(len(busy)):
                if busy[u] <= cycle:
                    unit = u
                    break
            stats.resource_requests += 1
            if unit < 0 or (needs_port and ports.available(cycle) == 0):
                stats.resource_denials += 1
                keep_append(tok)
                continue
            busy[unit] = cycle + meta.issue_interval
            fu_pool.grants += 1
            if needs_port:
                ports.try_acquire(cycle)
            self._start_execution(i, address, forwarding)
            e_in_iq[i] = False
            issued += 1
        # The scan's survivor list becomes the queue; keep the borrowed
        # ``issue_queue`` alias pointing at the kernel's backing list.
        self._wakeq.replace(keep)
        self.issue_queue = keep

    def _load_address(self, i: int) -> Optional[int]:
        """The address a load issuing now would use, or None if unknown."""
        meta = self.e_meta[i]
        base = meta.rs
        p = self.e_producers[i].get(base)
        if p is None:
            return u32(self.e_src_values[i].get(base, 0) + meta.imm)
        if base == REG_HI and self.e_whl[p]:
            ready = self.e_hi_ready[p]
        else:
            ready = self.e_value_ready[p]
        if ready is not None and ready < self.cycle:
            if base == REG_HI and self.e_whl[p]:
                current = self.e_current_hi[p]
            else:
                current = self.e_current[p]
            if current is None:
                current = self.e_src_values[i][base]
            return u32(current + meta.imm)
        if self.e_addr_reused[i] or self.e_addr_predicted[i]:
            return self.e_current_addr[i]
        return None

    def _forwarding_store(self, i: int, address: int) -> Optional[int]:
        """Youngest older store whose known address overlaps the load's."""
        nbytes = self.e_meta[i].mem_bytes
        seq = self.e_seq[i]
        e_seq = self.e_seq
        e_is_store = self.e_is_store
        e_current_addr = self.e_current_addr
        best = None
        for s in self.lsq:
            if e_seq[s] >= seq:
                break
            if not e_is_store[s]:
                continue
            store_addr = e_current_addr[s]
            if store_addr is None:
                continue
            if store_addr < address + nbytes \
                    and address < store_addr + self.e_meta[s].mem_bytes:
                best = s
        return best

    def _start_execution(self, i: int,
                         address: Optional[int] = None,
                         forwarding: Optional[int] = None) -> None:
        """Begin executing slot *i*; for loads the issue logic passes in
        the effective address and forwarding store it already computed."""
        cycle = self.cycle
        meta = self.e_meta[i]
        if self.telemetry is not None:
            self.telemetry.emit("issue", cycle, self.e_seq[i], meta.pc,
                                {"reexec": self.e_exec_count[i] > 0})
        self.e_issued[i] = True
        self.e_issue_cycle[i] = cycle
        self.e_reexec[i] = None
        self.e_stale[i] = False
        if self._pure_values:
            # Pure-value configurations read exactly the dispatch-time
            # values; alias the dict (it is never mutated).
            self.e_irv[i] = self.e_src_values[i]
        else:
            # Snapshot the *current* operand values into whichever scratch
            # buffer used_values does not alias, so the in-flight snapshot
            # never clobbers the completed one.
            buf_a = self.e_buf_a[i]
            buf = (self.e_buf_b[i] if self.e_used_values[i] is buf_a
                   else buf_a)
            buf.clear()
            src_values = self.e_src_values[i]
            producers = self.e_producers[i]
            e_whl = self.e_whl
            for reg in meta.src_regs:
                p = producers.get(reg)
                if p is None:
                    buf[reg] = src_values[reg]
                else:
                    if reg == REG_HI and e_whl[p]:
                        current = self.e_current_hi[p]
                    else:
                        current = self.e_current[p]
                    buf[reg] = src_values[reg] if current is None \
                        else current
            self.e_irv[i] = buf
        latency = meta.latency
        if meta.is_mem:
            if not meta.is_load:
                address = self._store_address(i)
            self.e_issue_addr[i] = address
            if meta.is_load:
                self.e_fwd_from[i] = (
                    None if forwarding is None
                    else (self.e_seq[forwarding] << SEQ_SHIFT) | forwarding)
                if forwarding is None:
                    latency += self.dcache.access_latency(address)
                    self.stats.dcache_accesses += 1
        completes = cycle + latency
        self.e_completes_at[i] = completes
        self._schedule(completes, _EVENT_COMPLETE, i)

    def _store_address(self, i: int) -> int:
        values = self.e_irv[i]
        meta = self.e_meta[i]
        base = meta.rs
        return u32(values.get(base, self.e_src_values[i].get(base, 0))
                   + meta.imm)

    # --------------------------------------------------------------- completion --

    def _on_complete(self, i: int) -> None:
        cycle = self.cycle
        stats = self.stats
        self.e_issued[i] = False
        self.e_exec_count[i] += 1
        stats.execution_attempts += 1
        first = not self.e_completed[i]
        if first:
            stats.executed_instructions += 1
        self.e_completed[i] = True
        self.e_last_completion[i] = cycle
        self.e_used_values[i] = self.e_irv[i]
        if self.telemetry is not None:
            self.telemetry.emit("complete", cycle, self.e_seq[i],
                                self.e_meta[i].pc,
                                {"first": first,
                                 "executions": self.e_exec_count[i]})

        new_value, new_hi = self._evaluate(i)
        previous = self.e_current[i]
        if previous is None and self.e_predicted[i]:
            previous = self.e_predicted_value[i]
        previous_hi = self.e_current_hi[i]
        self.e_current[i] = new_value
        self.e_current_hi[i] = new_hi

        if self.e_ready[i] is None:
            self.e_ready[i] = cycle
        if self.e_value_ready[i] is None:
            self.e_value_ready[i] = cycle
        if self.e_hi_ready[i] is None:
            self.e_hi_ready[i] = cycle

        if first:
            # Wake parked consumers: ops that left the wakeup queue while
            # this (their producer's first) execution was in flight.
            e_seq = self.e_seq
            e_in_iq = self.e_in_iq
            e_issued = self.e_issued
            e_completed = self.e_completed
            for ent in self.e_consumers[i]:
                c = (ent >> REG_SHIFT) & IDX_MASK
                if e_seq[c] != ent >> _CONS_SEQ_SHIFT:
                    continue  # the consumer was squashed
                if not e_in_iq[c] and not e_issued[c] \
                        and not e_completed[c]:
                    self._queue_for_issue(c)

        if self.e_is_mem[i]:
            self._complete_memory(i)

        if self.ir is not None:
            self.ir.insert(i)

        if self.e_stale[i]:
            self.e_stale[i] = False
            self._schedule_reexec(i, cycle + 1)
        else:
            self._try_finalize(i)

        nonspec = self.e_nonspec[i]
        correction = (nonspec if nonspec is not None and nonspec >= cycle
                      else cycle)
        if previous is not None and previous != new_value:
            self._propagate_change(i, correction, hi=False)
        if previous_hi is not None and previous_hi != new_hi:
            self._propagate_change(i, correction, hi=True)

        if self.e_nonspec[i] is None and not self.e_stale[i] \
                and self.e_reexec[i] is None and not self._pure_values:
            # Pure-value lane: inputs are never wrong, so no corrective
            # self-scheduled re-execution can ever be needed.
            self._maybe_schedule_final_reexec(i)

        if self.e_is_control[i] and not self.e_resolved[i] \
                and self.e_nonspec[i] is None:
            # Inputs still value-speculative: under SB the branch resolves
            # now anyway (may be spurious); under NSB it waits (Sec 4.1.4).
            if self.vp is not None and self.config.vp.branch_policy \
                    == BranchPolicy.SPECULATIVE:
                taken, target = self._computed_control(i)
                self._resolve_control(i, taken, target, final=False)

        if self.e_is_store[i]:
            if self.e_addr_known[i] is None:
                self.e_addr_known[i] = cycle
            self._check_memory_violations(i)
            self._poke_younger_loads(i)

        # Safety net: a pending re-execution raised while this execution
        # was in flight must re-enter the wakeup queue.
        if self.e_reexec[i] is not None:
            self._queue_for_issue(i)

    def _evaluate(self, i: int) -> Tuple[Optional[int], Optional[int]]:
        """Result of this execution over the values actually read."""
        meta = self.e_meta[i]
        outcome = self.e_outcome[i]
        if self._pure_values:
            # Operands are the oracle values by construction: the result
            # is the dispatch outcome (side effects mirrored from below).
            if meta.is_load:
                self.e_used_addr[i] = self.e_issue_addr[i]
                return outcome.result, None
            if meta.is_store:
                addr = self.e_issue_addr[i]
                self.e_used_addr[i] = addr
                self.e_current_addr[i] = addr
                return None, None
            if meta.is_indirect:
                self.e_current_addr[i] = outcome.next_pc
                return (outcome.result, None) if meta.is_call \
                    else (None, None)
            if meta.is_branch:
                return int(outcome.taken), None
            return outcome.result, outcome.result_hi
        values = self.e_used_values[i]
        if meta.is_load:
            address = self.e_issue_addr[i]
            self.e_used_addr[i] = address
            if address == outcome.mem_addr:
                return outcome.result, None
            return self.spec.read_mem(address, meta.mem_bytes,
                                      meta.mem_signed), None
        if meta.is_store:
            addr = self.e_issue_addr[i]
            self.e_used_addr[i] = addr
            self.e_current_addr[i] = addr
            return None, None
        if meta.is_indirect:
            a, _ = self._operand_pair(i, values)
            self.e_current_addr[i] = a  # computed jump target
            return (outcome.result, None) if meta.is_call \
                else (None, None)
        src_values = self.e_src_values[i]
        match = True
        for reg, v in values.items():
            if src_values[reg] != v:
                match = False
                break
        if meta.is_branch:
            if match:
                return int(outcome.taken), None
            a, b = self._operand_pair(i, values)
            return int(bool(meta.eval_fn(a, b, meta.imm))), None
        if match:
            return outcome.result, outcome.result_hi
        a, b = self._operand_pair(i, values)
        if meta.writes_hi_lo:
            pair = (mult_hi_lo(a, b) if meta.is_mult
                    else div_hi_lo(a, b))
            return pair[1], pair[0]
        return u32(meta.eval_fn(a, b, meta.imm)), None

    def _operand_pair(self, i: int,
                      values: Dict[int, int]) -> Tuple[int, int]:
        meta = self.e_meta[i]
        pair_reg = meta.pair_reg
        if pair_reg >= 0:  # mfhi/mflo/fcc-branch: one special operand
            return values.get(pair_reg, 0), 0
        src_values = self.e_src_values[i]
        rs, rt = meta.rs, meta.rt
        a = values.get(rs, src_values.get(rs, 0)) if rs else 0
        b = values.get(rt, src_values.get(rt, 0)) if rt else 0
        return a, b

    def _complete_memory(self, i: int) -> None:
        if self.e_is_load[i]:
            self.e_current_addr[i] = self.e_used_addr[i]
            if self.e_addr_known[i] is None:
                self.e_addr_known[i] = self.cycle

    def _computed_control(self, i: int) -> Tuple[bool, int]:
        if self.e_meta[i].is_branch:
            return bool(self.e_current[i]), self.e_meta[i].target
        return True, self.e_current[i]  # indirect jump: target is the value

    def _propagate_change(self, i: int, correction_cycle: int,
                          hi: bool) -> None:
        """My broadcast value changed: dependents must re-execute.

        Only the head of a dependent chain pays the verification penalty
        (correction_cycle already includes it); the rest re-issue as the
        corrected values flow (Section 4.1.3).
        """
        reexec_on_spec = (self.vp is None
                          or self.config.vp.reexec_policy
                          == ReexecPolicy.MULTIPLE)
        final = self.e_nonspec[i] is not None
        if not (final or reexec_on_spec):
            return  # NME: ignore speculative value changes
        writes_hi_lo = self.e_whl[i]
        value = self.e_current_hi[i] if hi else self.e_current[i]
        e_seq = self.e_seq
        e_issued = self.e_issued
        e_completed = self.e_completed
        for ent in self.e_consumers[i]:
            reg = ent & REG_MASK
            c = (ent >> REG_SHIFT) & IDX_MASK
            if e_seq[c] != ent >> _CONS_SEQ_SHIFT:
                continue  # the consumer was squashed
            is_hi = reg == REG_HI and writes_hi_lo
            if is_hi != hi:
                continue
            if e_issued[c]:
                self.e_stale[c] = True
            elif e_completed[c]:
                if self.e_used_values[c].get(reg) != value:
                    self._schedule_reexec(c, correction_cycle + 1)

    def _schedule_reexec(self, i: int, earliest: int) -> None:
        if self.telemetry is not None:
            self.telemetry.emit("reexec", self.cycle, self.e_seq[i],
                                self.e_meta[i].pc, {"earliest": earliest})
        reexec = self.e_reexec[i]
        if reexec is None or reexec > earliest:
            self.e_reexec[i] = earliest
        self.e_nonspec[i] = None
        if not self.e_issued[i]:
            self._queue_for_issue(i)

    def _maybe_schedule_final_reexec(self, i: int) -> None:
        """My inputs were wrong and their producers already finalized:
        nobody will send another change event, so self-schedule the
        (single) re-execution after the corrected values."""
        latest = self.cycle
        mismatch = False
        used_values = self.e_used_values[i]
        e_whl = self.e_whl
        for reg, p in self.e_producers[i].items():
            nonspec = self.e_nonspec[p]
            if nonspec is None:
                continue
            outcome = self.e_outcome[p]
            final_value = (outcome.result_hi
                           if reg == REG_HI and e_whl[p]
                           else outcome.result)
            if used_values.get(reg) != final_value:
                mismatch = True
                latest = max(latest, nonspec)
        if self.e_is_load[i] \
                and self.e_used_addr[i] != self.e_outcome[i].mem_addr \
                and self._load_address_final(i):
            mismatch = True
        if mismatch:
            self._schedule_reexec(i, latest + 1)

    def _load_address_final(self, i: int) -> bool:
        p = self.e_producers[i].get(self.e_meta[i].rs)
        return p is None or self.e_nonspec[p] is not None

    # --------------------------------------------------------------- finalization --

    def _try_finalize(self, i: int) -> None:
        """Establish non-speculative status (verification) if possible."""
        if self.e_nonspec[i] is not None:
            return
        if not self.e_completed[i] or self.e_issued[i] or self.e_stale[i] \
                or self.e_reexec[i] is not None:
            return
        when = self.e_last_completion[i]
        pure = self._pure_values
        used_values = self.e_used_values[i]
        e_whl = self.e_whl
        for reg, p in self.e_producers[i].items():
            nonspec = self.e_nonspec[p]
            if nonspec is None:
                return
            if not pure:
                outcome = self.e_outcome[p]
                final_value = (outcome.result_hi
                               if reg == REG_HI and e_whl[p]
                               else outcome.result)
                if used_values.get(reg) != final_value:
                    return
            if nonspec > when:
                when = nonspec
        if self.e_is_mem[i]:
            used_addr = self.e_used_addr[i]
            if used_addr is not None \
                    and used_addr != self.e_outcome[i].mem_addr:
                # Wrong (predicted/propagated) address; once the base
                # register is final nobody else will wake us, so schedule
                # the corrective re-execution here.
                if self._load_address_final(i):
                    self._schedule_reexec(i, self.cycle + 1)
                return
            if self.e_is_load[i] and not self._older_store_addrs_final(i):
                return
        if self.e_predicted[i] or self.e_addr_predicted[i]:
            when += self.verify_latency
        self.e_nonspec[i] = when

        if self.e_is_control[i] and not self.e_resolved[i]:
            if when <= self.cycle:
                taken, target = self._final_resolution(i)
                self._resolve_control(i, taken, target, final=True)
            else:
                self._schedule(when, _EVENT_RESOLVE, i)

        e_seq = self.e_seq
        e_issued = self.e_issued
        e_completed = self.e_completed
        e_is_store = self.e_is_store
        e_is_load = self.e_is_load
        # Direct iteration is safe in both walks: *i* is strictly older
        # than any op a cascading branch resolution can squash (it is a
        # producer of everything it reaches), so its consumer list is
        # neither cleared nor appended to mid-walk — squash only resets
        # *younger* slots, and their stale edges fail the seq check.
        if pure:
            # Values always agree: finalization only cascades.
            for ent in self.e_consumers[i]:
                c = (ent >> REG_SHIFT) & IDX_MASK
                if e_seq[c] != ent >> _CONS_SEQ_SHIFT:
                    continue  # the consumer was squashed
                if e_completed[c] and not e_issued[c]:
                    self._try_finalize(c)
                if e_is_store[c] or e_is_load[c]:
                    self._poke_younger_loads(c)
        else:
            outcome = self.e_outcome[i]
            writes_hi_lo = self.e_whl[i]
            cycle = self.cycle
            for ent in self.e_consumers[i]:
                reg = ent & REG_MASK
                c = (ent >> REG_SHIFT) & IDX_MASK
                if e_seq[c] != ent >> _CONS_SEQ_SHIFT:
                    continue  # the consumer was squashed
                final_value = (outcome.result_hi
                               if reg == REG_HI and writes_hi_lo
                               else outcome.result)
                if e_issued[c]:
                    if self.e_irv[c].get(reg) != final_value:
                        self.e_stale[c] = True
                elif e_completed[c]:
                    if self.e_used_values[c].get(reg) != final_value:
                        self._schedule_reexec(c, max(when, cycle) + 1)
                    else:
                        self._try_finalize(c)
                if e_is_store[c] or e_is_load[c]:
                    self._poke_younger_loads(c)
        if self.e_is_store[i]:
            self._poke_younger_loads(i)

    def _older_store_addrs_final(self, i: int) -> bool:
        seq = self.e_seq[i]
        e_seq = self.e_seq
        e_is_store = self.e_is_store
        for s in self.lsq:
            if e_seq[s] >= seq:
                break
            if e_is_store[s] and not self._store_addr_final(s):
                return False
        return True

    def _store_addr_final(self, s: int) -> bool:
        if self.e_addr_reused[s]:
            return True
        if not self.e_completed[s] \
                or self.e_used_addr[s] != self.e_outcome[s].mem_addr:
            return False
        p = self.e_producers[s].get(self.e_meta[s].rs)
        return p is None or self.e_nonspec[p] is not None

    def _poke_younger_loads(self, i: int) -> None:
        # Snapshot: finalizing a load can cascade into a branch resolution
        # that squashes (and therefore mutates) the LSQ.  A mid-walk
        # victim's slot reads back seq -1, which the age filter skips.
        mem_seq = self.e_seq[i]
        e_seq = self.e_seq
        e_is_load = self.e_is_load
        for load in list(self.lsq):
            if e_seq[load] <= mem_seq or not e_is_load[load]:
                continue
            self._try_finalize(load)

    def _check_memory_violations(self, s: int) -> None:
        """A store's address just resolved: replay loads it invalidates."""
        address = self.e_current_addr[s]
        nbytes = self.e_meta[s].mem_bytes
        store_seq = self.e_seq[s]
        store_tok = (store_seq << SEQ_SHIFT) | s
        e_seq = self.e_seq
        e_is_load = self.e_is_load
        e_completed = self.e_completed
        e_issued = self.e_issued
        for load in self.lsq:
            if e_seq[load] <= store_seq or not e_is_load[load]:
                continue
            if not e_completed[load] and not e_issued[load]:
                continue
            load_addr = (self.e_used_addr[load] if e_completed[load]
                         else self.e_issue_addr[load])
            if load_addr is None:
                continue
            load_bytes = self.e_meta[load].mem_bytes
            overlaps = (address < load_addr + load_bytes
                        and load_addr < address + nbytes)
            forwarded_here = self.e_fwd_from[load] == store_tok
            if overlaps != forwarded_here:
                if e_issued[load]:
                    self.e_stale[load] = True
                else:
                    self._schedule_reexec(load, self.cycle + 1)

    def _store_conflict(self, seq: int, address: int,
                        nbytes: int) -> bool:
        """Reuse-test helper: does a store older than *seq* overlap?"""
        e_seq = self.e_seq
        e_is_store = self.e_is_store
        e_outcome = self.e_outcome
        for s in self.lsq:
            if e_seq[s] >= seq:
                break
            if not e_is_store[s]:
                continue
            store_addr = e_outcome[s].mem_addr
            if store_addr < address + nbytes \
                    and address < store_addr + self.e_meta[s].mem_bytes:
                return True
        return False

    # ---------------------------------------------------------------- resolution --

    def _final_resolution(self, i: int) -> Tuple[bool, int]:
        """The true (non-speculative) outcome of a control instruction."""
        meta = self.e_meta[i]
        if meta.is_branch:
            return bool(self.e_outcome[i].taken), meta.target
        return True, self.e_outcome[i].next_pc

    def _resolve_control(self, i: int, taken: bool, target: int,
                         final: bool) -> None:
        meta = self.e_meta[i]
        actual_next = target if taken else meta.next_pc
        believed_next = (self.e_btarget[i] if self.e_btaken[i]
                         else meta.next_pc)
        self.e_last_resolution[i] = self.cycle
        if self.telemetry is not None:
            self.telemetry.emit(
                "branch_resolve", self.cycle, self.e_seq[i], meta.pc,
                {"taken": taken, "target": target, "final": final,
                 "redirected": actual_next != believed_next})
        if actual_next != believed_next:
            had_path = believed_next is not None
            self.e_btaken[i] = taken
            self.e_btarget[i] = target
            self._squash_after(i, actual_next, count=had_path,
                               spurious=not final)
        if final and not self.e_resolved[i]:
            self.e_resolved[i] = True
            if self.e_nonspec[i] is None:
                self.e_nonspec[i] = self.cycle
            if self.e_checkpoint[i] is not None:
                self.unresolved_control -= 1

    def _squash_after(self, i: int, redirect: int, count: bool,
                      spurious: bool) -> None:
        stats = self.stats
        if count:
            stats.branch_squashes += 1
            if spurious:
                stats.spurious_squashes += 1
        op_seq = self.e_seq[i]
        e_seq = self.e_seq
        if self.telemetry is not None:
            victims = sum(1 for v in self.rob if e_seq[v] > op_seq)
            self.telemetry.emit(
                "squash", self.cycle, op_seq, self.e_meta[i].pc,
                {"victims": victims, "spurious": spurious,
                 "redirect": redirect})
        pool = self.pool
        rob = self.rob
        lsq = self.lsq
        vp = self.vp
        while rob and e_seq[rob[-1]] > op_seq:
            victim = rob.pop()
            stats.squashed_instructions += 1
            if vp is not None:
                if self.e_predicted[victim]:
                    vp.abort_result(self.e_meta[victim].pc)
                if self.e_addr_predicted[victim]:
                    vp.abort_address(self.e_meta[victim].pc)
            if self.e_exec_count[victim] > 0:
                stats.squashed_executed += 1
                if self.ir is not None:
                    self.ir.note_squashed(victim)
            checkpoint = self.e_checkpoint[victim]
            if checkpoint is not None:
                if not self.e_resolved[victim]:
                    self.unresolved_control -= 1
                self.spec.release_checkpoint(checkpoint)
            if self.e_is_mem[victim]:
                assert lsq[-1] == victim, "LSQ out of sync with ROB"
                lsq.pop()
            # Victims pop youngest-first, so every consumer of this victim
            # (strictly younger) has already dropped its edges: the free
            # recycles the slot immediately, and the array reset *is* the
            # squash cleanup.  Stale tokens left in the rename map, event
            # heap, wakeup queue and forwarded_from fail seq validation.
            pool.drop_edges(victim)
            pool.free(victim)
        if self.telemetry is not None and self.e_checkpoint[i] is not None:
            self.telemetry.emit("checkpoint_restore", self.cycle, op_seq,
                                self.e_meta[i].pc, {"redirect": redirect})
        self.spec.restore(self.e_checkpoint[i])
        self.rename = self.e_rename_snapshot[i].copy()
        self._repair_predictor(i)
        self.fetch_unit.redirect(redirect, self.cycle)
        halt_tok = self.halt_dispatched
        if halt_tok is not None \
                and e_seq[halt_tok & IDX_MASK] != halt_tok >> SEQ_SHIFT:
            self.halt_dispatched = None

    def _repair_predictor(self, i: int) -> None:
        meta = self.e_meta[i]
        prediction = self.e_prediction[i]
        if meta.is_branch:
            self.predictor.repair(prediction, bool(self.e_btaken[i]),
                                  is_conditional=True)
        elif meta.is_call:
            self.predictor.repair_call(prediction, meta.next_pc)
        else:
            self.predictor.repair(prediction, True, is_conditional=False)

    # -------------------------------------------------------------------- commit --

    def _commit(self) -> None:
        committed = 0
        rob = self.rob
        cycle = self.cycle
        width = self.config.commit_width
        e_completed = self.e_completed
        e_nonspec = self.e_nonspec
        while rob and committed < width:
            i = rob[0]
            nonspec = e_nonspec[i]
            if not e_completed[i] or nonspec is None or nonspec >= cycle:
                break
            if self.e_is_control[i] and not self.e_resolved[i]:
                break
            rob.popleft()
            if self.e_is_mem[i]:
                head = self.lsq.popleft()
                assert head == i, "LSQ out of sync with ROB"
            # _commit_one may recycle the slot; read the flag first.
            is_halt = self.e_meta[i].is_halt
            self._commit_one(i)
            committed += 1
            if is_halt:
                self.halted = True
                self.stats.halted = True
                break

    def _commit_one(self, i: int) -> None:
        meta = self.e_meta[i]
        outcome = self.e_outcome[i]
        stats = self.stats
        stats.committed += 1
        exec_count = self.e_exec_count[i]
        if exec_count > 0:
            stats.record_exec_histogram(exec_count)

        checkpoint = self.e_checkpoint[i]
        if checkpoint is not None:
            self.spec.release_checkpoint(checkpoint)
            self.e_checkpoint[i] = None

        if meta.is_branch:
            prediction = self.e_prediction[i]
            stats.cond_branches += 1
            if prediction.taken == outcome.taken:
                stats.cond_branch_correct += 1
            stats.branch_resolution_cycles += (self.e_last_resolution[i]
                                               - self.e_dispatch[i])
            stats.branch_resolution_count += 1
            self.predictor.commit_branch(meta.pc, bool(outcome.taken),
                                         prediction)
        elif meta.is_return:
            stats.returns += 1
            prediction = self.e_prediction[i]
            if prediction and prediction.target == outcome.next_pc:
                stats.returns_correct += 1
        elif meta.is_indirect:
            self.predictor.commit_indirect(meta.pc, outcome.next_pc)

        if meta.is_mem:
            stats.memory_ops += 1
        if meta.is_store and self.ir is not None:
            self.ir.on_store_commit(outcome.mem_addr, meta.mem_bytes)

        if self.vp is not None:
            self._train_vp(i)
        if self.e_hit_full[i]:
            stats.ir_result_reused += 1
        if self.e_hit_addr[i]:
            stats.ir_addr_reused += 1

        if self.oracle is not None:
            self._verify_commit(i)
        if self.on_commit is not None:
            # Snapshot view built before the edges are dropped, so the
            # observer sees the producers still linked at commit.
            self.on_commit(self.pool.view(i), self.cycle)
        if self.telemetry is not None:
            tel = self.telemetry
            tel.emit("commit", self.cycle, self.e_seq[i], meta.pc, {
                "opcode": meta.opcode.name,
                "text": tel.disasm(meta),
                "dispatch": self.e_dispatch[i],
                "issue": self.e_issue_cycle[i],
                "complete": self.e_last_completion[i],
                "executions": exec_count,
                "reused": self.e_reused[i],
                "predicted": self.e_predicted[i],
                "correct": (self.e_predicted_value[i] == outcome.result
                            if self.e_predicted[i] else None),
            })

        # Nothing walks a committed op's consumer list again; drop the
        # forward edges and containers now so a pinned (retired but still
        # referenced) slot holds no references.  The backward producer
        # edges are dropped here too — a retired producer whose last
        # reference this was is recycled immediately, and because
        # producers are strictly older no cascade is possible.
        self.e_consumers[i].clear()
        self.e_rename_snapshot[i] = None
        self.e_fwd_from[i] = None
        self.pool.drop_edges(i)
        self.pool.retire(i)

    def _train_vp(self, i: int) -> None:
        meta = self.e_meta[i]
        outcome = self.e_outcome[i]
        stats = self.stats
        predicted = self.e_predicted[i]
        if self.config.vp.predict_results and meta.has_dest \
                and outcome.result is not None and not meta.is_store \
                and meta.executes and not meta.is_control:
            stats.vp_result_lookups += 1
            if predicted:
                stats.vp_result_predicted += 1
                predicted_value = self.e_predicted_value[i]
                if predicted_value == outcome.result:
                    stats.vp_result_correct += 1
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_verify", self.cycle, self.e_seq[i], meta.pc,
                        {"what": "result",
                         "correct": predicted_value == outcome.result,
                         "predicted": predicted_value,
                         "actual": outcome.result})
            self.vp.train_result(meta.pc, outcome.result,
                                 self.e_predicted_value[i] if predicted
                                 else None)
        if meta.is_mem:
            stats.vp_addr_lookups += 1
            addr_predicted = self.e_addr_predicted[i]
            if addr_predicted:
                stats.vp_addr_predicted += 1
                predicted_addr = self.e_predicted_addr[i]
                if predicted_addr == outcome.mem_addr:
                    stats.vp_addr_correct += 1
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_verify", self.cycle, self.e_seq[i], meta.pc,
                        {"what": "address",
                         "correct": predicted_addr == outcome.mem_addr,
                         "predicted": predicted_addr,
                         "actual": outcome.mem_addr})
            self.vp.train_address(meta.pc, outcome.mem_addr,
                                  self.e_predicted_addr[i] if addr_predicted
                                  else None)

    def _verify_commit(self, i: int) -> None:
        meta = self.e_meta[i]
        expected = self.oracle.step()
        if expected.pc != meta.pc:
            raise SimulationError(
                f"commit diverged: oracle at {expected.pc:#x}, "
                f"core committed {meta.pc:#x} (cycle {self.cycle})")
        if expected.writes != self.e_outcome[i].writes:
            raise SimulationError(
                f"commit wrote {self.e_outcome[i].writes} but oracle wrote "
                f"{expected.writes} at {meta.inst}")

    # --------------------------------------------------------------------- stats --

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.fetched = self.fetch_unit.fetched
        stats.icache_misses = self.fetch_unit.icache.misses
        stats.dcache_misses = self.dcache.misses
