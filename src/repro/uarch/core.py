"""The out-of-order timing core integrating VP and IR.

Pipeline structure mirrors Figure 1/2 of the paper: fetch -> decode/rename/
dispatch -> (out-of-order issue/execute) -> commit, over the Table 1
machine.  Architectural semantics are computed *at dispatch* against a
checkpointed speculative state (the SimpleScalar ``sim-outorder`` design),
so the model runs wrong paths with real values; the back end models timing
and — under value prediction — the propagation of *mispredicted* values:
each execution re-evaluates its operation over its operands' current
(possibly wrong) values, so spurious branch resolutions and selective
re-execution behave like the hardware the paper describes.

Key timing conventions (see also :mod:`repro.uarch.entry`):

* a value produced in cycle ``r`` can feed an execution issuing in ``r+1``;
* value-predicted / reused values are available at the dispatch cycle;
* an instruction commits no earlier than the cycle after it completed and
  became non-value-speculative;
* a verified misprediction corrects dependents ``verify_latency`` cycles
  after the verifying execution completes, and only the first instruction
  of a dependent chain pays that penalty (Section 4.1.3).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..functional.simulator import (
    ExecOutcome,
    FunctionalSimulator,
    SimulationError,
    execute,
)
from ..isa.instruction import Instruction
from ..isa.opcodes import (
    OpClass,
    REG_FCC,
    REG_HI,
    REG_LO,
    div_hi_lo,
    mult_hi_lo,
    u32,
)
from ..isa.program import Program
from ..metrics.stats import SimStats
from ..reuse.scheme import ReuseDecision, ReuseEngine
from ..vp.predictors import ValuePredictor, make_predictor
from .branch_predictor import BranchPredictorUnit
from .cache import PortTracker, SetAssocCache
from .config import BranchPolicy, IRValidation, MachineConfig, ReexecPolicy
from .entry import InflightOp
from .fetch import FetchedInst, FetchUnit
from .functional_units import FunctionalUnits
from .spec_state import SpeculativeState

_EVENT_COMPLETE = 0
_EVENT_RESOLVE = 1


class OutOfOrderCore:
    """Cycle-stepped 4-way out-of-order processor model."""

    def __init__(self, config: MachineConfig, program: Program):
        self.config = config
        self.program = program
        self.stats = SimStats(config_name=config.name)

        self.predictor = BranchPredictorUnit(config.bpred)
        self.fetch_unit = FetchUnit(config, program, self.predictor)
        self.fus = FunctionalUnits(config)
        self.dcache = SetAssocCache(config.dcache, "dcache")
        self.dcache_ports = PortTracker(config.dcache.ports)
        self.spec = SpeculativeState(program)

        self.rename: Dict[int, InflightOp] = {}
        self.rob: Deque[InflightOp] = deque()
        self.lsq: Deque[InflightOp] = deque()
        self.events: List[Tuple[int, int, int, InflightOp]] = []

        self.cycle = 0
        self.seq = 0
        self.unresolved_control = 0
        self.halt_dispatched: Optional[InflightOp] = None
        self.halted = False

        self.vp = make_predictor(config.vp) if config.vp.enabled else None
        self.ir: Optional[ReuseEngine] = (
            ReuseEngine(config.ir, self.stats) if config.ir.enabled else None)
        self.verify_latency = config.vp.verify_latency if config.vp.enabled \
            else 0

        if config.vp.enabled and config.ir.enabled and not config.hybrid:
            raise ValueError(
                "VP and IR are separate techniques in the paper; enable "
                "one at a time (or set hybrid=True for the combined "
                "scheme the paper's conclusion suggests)")

        self.oracle: Optional[FunctionalSimulator] = (
            FunctionalSimulator(program) if config.verify_commits else None)

        # Optional observer invoked as on_commit(op, cycle) for every
        # committed instruction (tracing, examples, custom statistics).
        self.on_commit = None

    # ------------------------------------------------------------------ run --

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until halt commits or a budget is exhausted."""
        while not self.halted:
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if (max_instructions is not None
                    and self.stats.committed >= max_instructions):
                break
            self.step()
        self._finalize_stats()
        return self.stats

    def skip(self, instructions: int) -> None:
        """Functionally fast-forward before timing simulation starts.

        Mirrors the paper's warm-up skip (1-2.5 billion instructions there).
        Must be called before the first :meth:`step`.
        """
        if self.cycle or self.rob:
            raise SimulationError("skip() must precede timing simulation")
        pc = self.program.entry_point
        executed = 0
        while executed < instructions:
            inst = self.program.fetch(pc)
            if inst is None:
                raise SimulationError(f"skip ran off program at {pc:#x}")
            if inst.opcode.is_halt:
                break
            outcome = execute(inst, self.spec)
            pc = outcome.next_pc
            executed += 1
        self.fetch_unit.fetch_pc = pc
        if self.oracle is not None:
            self.oracle.skip(executed)

    def step(self) -> None:
        """Advance one cycle (reverse pipeline order)."""
        self.cycle += 1
        self._commit()
        self._process_events()
        self._issue()
        self._dispatch()
        self.fetch_unit.step(self.cycle)
        self.stats.cycles = self.cycle

    # ---------------------------------------------------------------- events --

    def _schedule(self, cycle: int, kind: int, op: InflightOp) -> None:
        heapq.heappush(self.events, (cycle, op.seq, kind, op))

    def _process_events(self) -> None:
        while self.events and self.events[0][0] <= self.cycle:
            _, _, kind, op = heapq.heappop(self.events)
            if op.squashed:
                continue
            if kind == _EVENT_COMPLETE:
                if op.completes_at == self.cycle and op.issued:
                    self._on_complete(op)
            elif kind == _EVENT_RESOLVE:
                if not op.resolved_final:
                    taken, target = self._final_resolution(op)
                    self._resolve_control(op, taken, target, final=True)

    # --------------------------------------------------------------- dispatch --

    def _dispatch(self) -> None:
        dispatched = 0
        while dispatched < self.config.decode_width and self.fetch_unit.queue:
            fetched = self.fetch_unit.peek()
            inst = fetched.inst
            if fetched.fetch_cycle >= self.cycle:
                break  # fetched this very cycle; decode next cycle
            if self.halt_dispatched is not None:
                break
            if len(self.rob) >= self.config.rob_size:
                break
            if inst.opcode.is_mem and len(self.lsq) >= self.config.lsq_size:
                break
            needs_ckpt = inst.opcode.is_branch or inst.opcode.is_indirect
            if needs_ckpt and (self.unresolved_control
                               >= self.config.max_unresolved_branches):
                break
            self.fetch_unit.pop()
            self._dispatch_one(fetched)
            dispatched += 1
            self.stats.dispatched += 1
            if inst.opcode.is_halt:
                break
            # A reused branch that squashed at dispatch cleared the queue,
            # which ends this loop naturally.

    def _dispatch_one(self, fetched: FetchedInst) -> InflightOp:
        inst = fetched.inst
        src_values = {reg: self.spec.regs[reg] for reg in inst.src_regs}
        outcome = execute(inst, self.spec)
        self.seq += 1
        op = InflightOp(self.seq, inst, outcome, self.cycle)
        op.src_values = src_values
        for reg in inst.src_regs:
            producer = self.rename.get(reg)
            if producer is None:
                continue
            op.producers[reg] = producer
            if producer.nonspec_cycle is None or not producer.completed:
                producer.consumers.append((op, reg))
        for reg in inst.dest_regs:
            self.rename[reg] = op

        self.rob.append(op)
        if inst.opcode.is_mem:
            self.lsq.append(op)

        if op.is_control:
            self._dispatch_control(op, fetched)
        if not op.executes:
            self._complete_at_dispatch(op)
        if inst.opcode.is_halt:
            self.halt_dispatched = op

        if self.ir is not None and op.executes:
            self._apply_reuse(op)
        if self.vp is not None and op.executes and not op.is_control \
                and not op.reused:
            self._apply_value_prediction(op)
        return op

    def _dispatch_control(self, op: InflightOp, fetched: FetchedInst) -> None:
        inst = op.inst
        op.prediction = fetched.prediction
        if inst.opcode.is_branch:
            op.believed_taken = fetched.prediction.taken
            op.believed_target = inst.target
        else:
            op.believed_taken = True
            op.believed_target = (fetched.prediction.target
                                  if fetched.prediction else inst.target)
        if op.needs_checkpoint:
            op.checkpoint = self.spec.take_checkpoint(inst.pc)
            op.rename_snapshot = dict(self.rename)
            self.unresolved_control += 1
        else:
            # Direct j/jal: fetch followed the target; nothing to resolve.
            op.resolved_final = True
            op.last_resolution_cycle = self.cycle

    def _complete_at_dispatch(self, op: InflightOp) -> None:
        """Non-executing ops (j/jal/nop/halt) are done at dispatch."""
        op.completed = True
        op.used_values = dict(op.src_values)
        op.last_completion_cycle = self.cycle
        op.ready_cycle = self.cycle
        op.value_ready_cycle = self.cycle
        op.current_value = op.outcome.result
        op.nonspec_cycle = self.cycle

    # -- VP at dispatch --------------------------------------------------------------

    def _apply_value_prediction(self, op: InflightOp) -> None:
        inst, outcome = op.inst, op.outcome
        if self.config.vp.predict_results and inst.dest_regs \
                and outcome.result is not None and not inst.opcode.is_store:
            predicted = self.vp.predict_result(inst.pc, outcome.result)
            if predicted is not None:
                op.predicted = True
                op.predicted_value = predicted
                op.value_ready_cycle = self.cycle
        if inst.opcode.is_mem:
            predicted_addr = self.vp.predict_address(inst.pc,
                                                     outcome.mem_addr)
            if predicted_addr is not None:
                op.addr_predicted = True
                op.predicted_addr = predicted_addr
                op.current_addr = predicted_addr
                if op.is_store:
                    op.addr_known_cycle = self.cycle  # speculative

    # -- IR at dispatch --------------------------------------------------------------

    def _apply_reuse(self, op: InflightOp) -> None:
        decision = self.ir.test(op, self.cycle, self._store_conflict)
        if not decision.hit:
            return
        op.reuse_hit_full = decision.full
        op.reuse_hit_addr = decision.address
        if self.config.ir.validation == IRValidation.EARLY:
            self._apply_reuse_early(op, decision)
        else:
            self._apply_reuse_late(op, decision)

    def _apply_reuse_early(self, op: InflightOp,
                           decision: ReuseDecision) -> None:
        entry = decision.entry
        if decision.address:
            op.addr_reused = True
            op.current_addr = entry.address
            op.addr_known_cycle = self.cycle  # non-speculative
        if not decision.full:
            return
        op.reused = True
        op.reuse_value = entry.result
        op.completed = True
        op.used_values = dict(op.src_values)
        op.last_completion_cycle = self.cycle
        op.ready_cycle = self.cycle
        op.value_ready_cycle = self.cycle
        op.hi_ready_cycle = self.cycle
        op.nonspec_cycle = self.cycle
        op.current_value = entry.result
        op.current_hi = entry.result_hi
        if op.is_load:
            op.used_addr = entry.address
        if self.config.verify_commits and not op.is_control:
            if entry.result != op.outcome.result:
                raise SimulationError(
                    f"reuse produced wrong value at {op.inst}")
        if op.inst.opcode.is_branch:
            self.stats.reused_branches += 1
            self._resolve_control(op, bool(entry.result), op.inst.target,
                                  final=True)
        elif op.inst.opcode.is_indirect:
            op.current_addr = entry.result
            self.stats.reused_branches += 1
            self._resolve_control(op, True, entry.result, final=True)

    def _apply_reuse_late(self, op: InflightOp,
                          decision: ReuseDecision) -> None:
        """Figure 3's *late* experiment: hits act like perfect predictions."""
        entry = decision.entry
        if decision.address:
            op.addr_predicted = True
            op.predicted_addr = entry.address
            op.current_addr = entry.address
            if op.is_store:
                op.addr_known_cycle = self.cycle
        if decision.full:
            # The hit marker feeds same-cycle dependence chaining in the
            # reuse test: detection is identical to early mode, only the
            # validation point moves to the execute stage.
            op.reuse_value = entry.result
            if op.inst.dest_regs:
                op.predicted = True
                op.predicted_value = entry.result
                op.value_ready_cycle = self.cycle

    # ------------------------------------------------------------------- issue --

    def _issue(self) -> None:
        issued = 0
        for op in self.rob:
            if issued >= self.config.issue_width:
                break
            if not self._wants_issue(op):
                continue
            if not self._can_issue(op):
                continue
            granted = self._try_acquire_resources(op)
            self.stats.resource_requests += 1
            if not granted:
                self.stats.resource_denials += 1
                continue
            self._start_execution(op)
            issued += 1

    def _wants_issue(self, op: InflightOp) -> bool:
        if op.squashed or op.issued or not op.executes:
            return False
        if op.dispatch_cycle >= self.cycle:
            return False
        if op.reexec_earliest is not None:
            return self.cycle >= op.reexec_earliest
        return not op.completed

    def _can_issue(self, op: InflightOp) -> bool:
        if op.is_load:
            return self._load_can_issue(op)
        if op.is_store:
            return op.operands_ready(self.cycle)
        return op.operands_ready(self.cycle)

    def _load_can_issue(self, op: InflightOp) -> bool:
        address = self._load_address(op)
        if address is None:
            return False
        # Table 1: loads execute only after all preceding store addresses
        # are known (reused/predicted addresses count as known).
        for store in self.lsq:
            if store.seq >= op.seq:
                break
            if not store.is_store or store.squashed:
                continue
            known = store.addr_known_cycle
            if known is None or known >= self.cycle:
                return False
        forwarding = self._forwarding_store(op, address)
        if forwarding is not None:
            # Need the store's data before the value can be bypassed.
            data_reg = forwarding.inst.rd
            producer = forwarding.producers.get(data_reg)
            if producer is not None:
                ready = producer.reg_ready_cycle(data_reg)
                if ready is None or ready >= self.cycle:
                    return False
        return True

    def _load_address(self, op: InflightOp) -> Optional[int]:
        """The address a load issuing now would use, or None if unknown."""
        base = op.inst.rs
        producer = op.producers.get(base)
        base_ready = (producer is None
                      or (producer.reg_ready_cycle(base) is not None
                          and producer.reg_ready_cycle(base) < self.cycle))
        if base_ready:
            values = op.read_current_operands()
            return u32(values.get(base, op.src_values.get(base, 0))
                       + op.inst.imm)
        if op.addr_reused or op.addr_predicted:
            return op.current_addr
        return None

    def _forwarding_store(self, op: InflightOp,
                          address: int) -> Optional[InflightOp]:
        """Youngest older store whose known address overlaps the load's."""
        nbytes = op.inst.opcode.mem_bytes
        best = None
        for store in self.lsq:
            if store.seq >= op.seq:
                break
            if not store.is_store or store.squashed:
                continue
            store_addr = store.current_addr
            if store_addr is None:
                continue
            store_bytes = store.inst.opcode.mem_bytes
            if store_addr < address + nbytes \
                    and address < store_addr + store_bytes:
                best = store
        return best

    def _try_acquire_resources(self, op: InflightOp) -> bool:
        opcode = op.inst.opcode
        pool = self.fus.pools[opcode.op_class]
        needs_port = False
        if op.is_load:
            address = self._load_address(op)
            needs_port = self._forwarding_store(op, address) is None
        if pool.available(self.cycle) == 0:
            return False
        if needs_port and self.dcache_ports.available(self.cycle) == 0:
            return False
        pool.try_issue(self.cycle, opcode.issue_interval)
        if needs_port:
            self.dcache_ports.try_acquire(self.cycle)
        return True

    def _start_execution(self, op: InflightOp) -> None:
        op.issued = True
        op.issue_cycle = self.cycle
        op.reexec_earliest = None
        op.stale = False
        op.issue_read_values = op.read_current_operands()
        latency = op.inst.opcode.latency
        if op.is_mem:
            address = (self._load_address(op) if op.is_load
                       else self._store_address(op))
            op.issue_addr = address
            if op.is_load:
                forwarding = self._forwarding_store(op, address)
                op.forwarded_from = forwarding
                if forwarding is None:
                    latency += self.dcache.access_latency(address)
                    self.stats.dcache_accesses += 1
        op.completes_at = self.cycle + latency
        self._schedule(op.completes_at, _EVENT_COMPLETE, op)

    def _store_address(self, op: InflightOp) -> int:
        values = op.issue_read_values
        base = op.inst.rs
        return u32(values.get(base, op.src_values.get(base, 0)) + op.inst.imm)

    # --------------------------------------------------------------- completion --

    def _on_complete(self, op: InflightOp) -> None:
        op.issued = False
        op.exec_count += 1
        self.stats.execution_attempts += 1
        first = not op.completed
        if first:
            self.stats.executed_instructions += 1
        op.completed = True
        op.last_completion_cycle = self.cycle
        op.used_values = op.issue_read_values

        new_value, new_hi = self._evaluate(op)
        previous = op.current_value
        if previous is None and op.predicted:
            previous = op.predicted_value
        previous_hi = op.current_hi
        op.current_value = new_value
        op.current_hi = new_hi

        if op.ready_cycle is None:
            op.ready_cycle = self.cycle
        if op.value_ready_cycle is None:
            op.value_ready_cycle = self.cycle
        if op.hi_ready_cycle is None:
            op.hi_ready_cycle = self.cycle

        if op.is_mem:
            self._complete_memory(op)

        if self.ir is not None:
            self.ir.insert(op)

        if op.stale:
            op.stale = False
            self._schedule_reexec(op, self.cycle + 1)
        else:
            self._try_finalize(op)

        correction = (op.nonspec_cycle
                      if op.nonspec_cycle is not None
                      and op.nonspec_cycle >= self.cycle else self.cycle)
        if previous is not None and previous != new_value:
            self._propagate_change(op, correction, hi=False)
        if previous_hi is not None and previous_hi != new_hi:
            self._propagate_change(op, correction, hi=True)

        if op.nonspec_cycle is None and not op.stale \
                and op.reexec_earliest is None:
            self._maybe_schedule_final_reexec(op)

        if op.is_control and not op.resolved_final \
                and op.nonspec_cycle is None:
            # Inputs still value-speculative: under SB the branch resolves
            # now anyway (may be spurious); under NSB it waits (Sec 4.1.4).
            if self.vp is not None and self.config.vp.branch_policy \
                    == BranchPolicy.SPECULATIVE:
                taken, target = self._computed_control(op)
                self._resolve_control(op, taken, target, final=False)

        if op.is_store:
            if op.addr_known_cycle is None:
                op.addr_known_cycle = self.cycle
            self._check_memory_violations(op)
            self._poke_younger_loads(op)

    def _evaluate(self, op: InflightOp) -> Tuple[Optional[int], Optional[int]]:
        """Result of this execution over the values actually read."""
        inst, outcome = op.inst, op.outcome
        values = op.used_values
        if op.is_load:
            address = op.issue_addr
            op.used_addr = address
            if address == outcome.mem_addr:
                return outcome.result, None
            opcode = inst.opcode
            return self.spec.read_mem(address, opcode.mem_bytes,
                                      opcode.mem_signed), None
        if op.is_store:
            op.used_addr = op.issue_addr
            op.current_addr = op.issue_addr
            return None, None
        if inst.opcode.is_indirect:
            a, _ = self._operand_pair(op, values)
            op.current_addr = a  # computed jump target
            return (outcome.result, None) if inst.opcode.is_call \
                else (None, None)
        if inst.opcode.is_branch:
            if op.inputs_match_oracle(values):
                return int(outcome.taken), None
            a, b = self._operand_pair(op, values)
            return int(bool(inst.opcode.eval_fn(a, b, inst.imm))), None
        if op.inputs_match_oracle(values):
            return outcome.result, outcome.result_hi
        opcode = inst.opcode
        a, b = self._operand_pair(op, values)
        if opcode.writes_hi_lo:
            pair = (mult_hi_lo(a, b) if opcode.name == "mult"
                    else div_hi_lo(a, b))
            return pair[1], pair[0]
        return u32(opcode.eval_fn(a, b, inst.imm)), None

    def _operand_pair(self, op: InflightOp,
                      values: Dict[int, int]) -> Tuple[int, int]:
        inst = op.inst
        name = inst.opcode.name
        if name in ("mfhi", "mflo"):
            reg = REG_HI if name == "mfhi" else REG_LO
            return values.get(reg, 0), 0
        if inst.opcode.fmt.name == "BRANCH0":
            return values.get(REG_FCC, 0), 0
        a = values.get(inst.rs, op.src_values.get(inst.rs, 0)) \
            if inst.rs else 0
        b = values.get(inst.rt, op.src_values.get(inst.rt, 0)) \
            if inst.rt else 0
        return a, b

    def _complete_memory(self, op: InflightOp) -> None:
        if op.is_load:
            op.current_addr = op.used_addr
            if op.addr_known_cycle is None:
                op.addr_known_cycle = self.cycle

    def _computed_control(self, op: InflightOp) -> Tuple[bool, int]:
        if op.inst.opcode.is_branch:
            return bool(op.current_value), op.inst.target
        return True, op.current_value  # indirect jump: target is the value

    def _propagate_change(self, op: InflightOp, correction_cycle: int,
                          hi: bool) -> None:
        """My broadcast value changed: dependents must re-execute.

        Only the head of a dependent chain pays the verification penalty
        (correction_cycle already includes it); the rest re-issue as the
        corrected values flow (Section 4.1.3).
        """
        reexec_on_spec = (self.vp is None
                          or self.config.vp.reexec_policy
                          == ReexecPolicy.MULTIPLE)
        final = op.nonspec_cycle is not None
        for consumer, reg in op.consumers:
            if consumer.squashed:
                continue
            is_hi = reg == REG_HI and op.inst.opcode.writes_hi_lo
            if is_hi != hi:
                continue
            if not (final or reexec_on_spec):
                continue  # NME: ignore speculative value changes
            if consumer.issued:
                consumer.stale = True
            elif consumer.completed:
                if consumer.used_values.get(reg) != op.value_for_reg(reg):
                    self._schedule_reexec(consumer, correction_cycle + 1)

    def _schedule_reexec(self, op: InflightOp, earliest: int) -> None:
        if op.squashed:
            return
        if op.reexec_earliest is None or op.reexec_earliest > earliest:
            op.reexec_earliest = earliest
        op.nonspec_cycle = None

    def _maybe_schedule_final_reexec(self, op: InflightOp) -> None:
        """My inputs were wrong and their producers already finalized:
        nobody will send another change event, so self-schedule the
        (single) re-execution after the corrected values."""
        latest = self.cycle
        mismatch = False
        for reg, producer in op.producers.items():
            if producer.nonspec_cycle is None:
                continue
            if op.used_values.get(reg) != producer.final_value_for_reg(reg):
                mismatch = True
                latest = max(latest, producer.nonspec_cycle)
        if op.is_load and op.used_addr != op.outcome.mem_addr \
                and self._load_address_final(op):
            mismatch = True
        if mismatch:
            self._schedule_reexec(op, latest + 1)

    def _load_address_final(self, op: InflightOp) -> bool:
        base = op.inst.rs
        producer = op.producers.get(base)
        return producer is None or producer.nonspec_cycle is not None

    # --------------------------------------------------------------- finalization --

    def _try_finalize(self, op: InflightOp) -> None:
        """Establish non-speculative status (verification) if possible."""
        if op.squashed or op.nonspec_cycle is not None:
            return
        if not op.completed or op.issued or op.stale \
                or op.reexec_earliest is not None:
            return
        when = op.last_completion_cycle
        for reg, producer in op.producers.items():
            if producer.nonspec_cycle is None:
                return
            if op.used_values.get(reg) != producer.final_value_for_reg(reg):
                return
            when = max(when, producer.nonspec_cycle)
        if op.is_mem:
            if op.used_addr is not None \
                    and op.used_addr != op.outcome.mem_addr:
                # Wrong (predicted/propagated) address; once the base
                # register is final nobody else will wake us, so schedule
                # the corrective re-execution here.
                if self._load_address_final(op):
                    self._schedule_reexec(op, self.cycle + 1)
                return
            if op.is_load and not self._older_store_addrs_final(op):
                return
        if op.predicted or op.addr_predicted:
            when += self.verify_latency
        op.nonspec_cycle = when

        if op.is_control and not op.resolved_final:
            if when <= self.cycle:
                taken, target = self._final_resolution(op)
                self._resolve_control(op, taken, target, final=True)
            else:
                self._schedule(when, _EVENT_RESOLVE, op)

        for consumer, reg in list(op.consumers):
            if consumer.squashed:
                continue
            final_value = op.final_value_for_reg(reg)
            if consumer.issued:
                if consumer.issue_read_values.get(reg) != final_value:
                    consumer.stale = True
            elif consumer.completed:
                if consumer.used_values.get(reg) != final_value:
                    self._schedule_reexec(consumer, max(when, self.cycle) + 1)
                else:
                    self._try_finalize(consumer)
            if consumer.is_store or consumer.is_load:
                self._poke_younger_loads(consumer)
        if op.is_store:
            self._poke_younger_loads(op)

    def _older_store_addrs_final(self, op: InflightOp) -> bool:
        for store in self.lsq:
            if store.seq >= op.seq:
                break
            if store.is_store and not store.squashed \
                    and not self._store_addr_final(store):
                return False
        return True

    def _store_addr_final(self, store: InflightOp) -> bool:
        if store.addr_reused:
            return True
        if not store.completed or store.used_addr != store.outcome.mem_addr:
            return False
        base = store.inst.rs
        producer = store.producers.get(base)
        return producer is None or producer.nonspec_cycle is not None

    def _poke_younger_loads(self, mem_op: InflightOp) -> None:
        # Snapshot: finalizing a load can cascade into a branch resolution
        # that squashes (and therefore mutates) the LSQ.
        for load in list(self.lsq):
            if load.seq <= mem_op.seq or not load.is_load or load.squashed:
                continue
            self._try_finalize(load)

    def _check_memory_violations(self, store: InflightOp) -> None:
        """A store's address just resolved: replay loads it invalidates."""
        address = store.current_addr
        nbytes = store.inst.opcode.mem_bytes
        for load in self.lsq:
            if load.seq <= store.seq or not load.is_load or load.squashed:
                continue
            if not load.completed and not load.issued:
                continue
            load_addr = load.used_addr if load.completed else load.issue_addr
            if load_addr is None:
                continue
            load_bytes = load.inst.opcode.mem_bytes
            overlaps = (address < load_addr + load_bytes
                        and load_addr < address + nbytes)
            forwarded_here = load.forwarded_from is store
            if overlaps != forwarded_here:
                if load.issued:
                    load.stale = True
                else:
                    self._schedule_reexec(load, self.cycle + 1)

    def _store_conflict(self, op: InflightOp, address: int,
                        nbytes: int) -> bool:
        """Reuse-test helper: does an older in-flight store overlap?"""
        for store in self.lsq:
            if store.seq >= op.seq:
                break
            if not store.is_store or store.squashed:
                continue
            store_addr = store.outcome.mem_addr
            store_bytes = store.inst.opcode.mem_bytes
            if store_addr < address + nbytes \
                    and address < store_addr + store_bytes:
                return True
        return False

    # ---------------------------------------------------------------- resolution --

    def _final_resolution(self, op: InflightOp) -> Tuple[bool, int]:
        """The true (non-speculative) outcome of a control instruction."""
        if op.inst.opcode.is_branch:
            return bool(op.outcome.taken), op.inst.target
        return True, op.outcome.next_pc

    def _resolve_control(self, op: InflightOp, taken: bool, target: int,
                         final: bool) -> None:
        inst = op.inst
        actual_next = target if taken else inst.next_pc
        believed_next = (op.believed_target if op.believed_taken
                         else inst.next_pc)
        op.last_resolution_cycle = self.cycle
        if actual_next != believed_next:
            had_path = believed_next is not None
            op.believed_taken = taken
            op.believed_target = target
            self._squash_after(op, actual_next, count=had_path,
                               spurious=not final)
        if final and not op.resolved_final:
            op.resolved_final = True
            if op.nonspec_cycle is None:
                op.nonspec_cycle = self.cycle
            if op.checkpoint is not None:
                self.unresolved_control -= 1

    def _squash_after(self, op: InflightOp, redirect: int, count: bool,
                      spurious: bool) -> None:
        if count:
            self.stats.branch_squashes += 1
            if spurious:
                self.stats.spurious_squashes += 1
        while self.rob and self.rob[-1].seq > op.seq:
            victim = self.rob.pop()
            victim.squashed = True
            self.stats.squashed_instructions += 1
            if self.vp is not None:
                if victim.predicted:
                    self.vp.abort_result(victim.inst.pc)
                if victim.addr_predicted:
                    self.vp.abort_address(victim.inst.pc)
            if victim.exec_count > 0:
                self.stats.squashed_executed += 1
                if self.ir is not None:
                    self.ir.note_squashed(victim)
            if victim.checkpoint is not None:
                if not victim.resolved_final:
                    self.unresolved_control -= 1
                self.spec.release_checkpoint(victim.checkpoint)
                victim.checkpoint = None
        while self.lsq and self.lsq[-1].squashed:
            self.lsq.pop()
        self.spec.restore(op.checkpoint)
        self.rename = dict(op.rename_snapshot)
        self._repair_predictor(op)
        self.fetch_unit.redirect(redirect, self.cycle)
        if self.halt_dispatched is not None and self.halt_dispatched.squashed:
            self.halt_dispatched = None

    def _repair_predictor(self, op: InflightOp) -> None:
        inst = op.inst
        if inst.opcode.is_branch:
            self.predictor.repair(op.prediction, bool(op.believed_taken),
                                  is_conditional=True)
        elif inst.opcode.is_call:
            self.predictor.repair_call(op.prediction, inst.next_pc)
        else:
            self.predictor.repair(op.prediction, True, is_conditional=False)

    # -------------------------------------------------------------------- commit --

    def _commit(self) -> None:
        committed = 0
        while self.rob and committed < self.config.commit_width:
            op = self.rob[0]
            if not op.completed or op.nonspec_cycle is None \
                    or op.nonspec_cycle >= self.cycle:
                break
            if op.is_control and not op.resolved_final:
                break
            self.rob.popleft()
            if op.is_mem:
                head = self.lsq.popleft()
                assert head is op, "LSQ out of sync with ROB"
            self._commit_one(op)
            committed += 1
            if op.inst.opcode.is_halt:
                self.halted = True
                self.stats.halted = True
                break

    def _commit_one(self, op: InflightOp) -> None:
        inst, outcome = op.inst, op.outcome
        stats = self.stats
        stats.committed += 1
        if op.exec_count > 0:
            stats.record_exec_histogram(op.exec_count)

        if op.checkpoint is not None:
            self.spec.release_checkpoint(op.checkpoint)
            op.checkpoint = None

        if inst.opcode.is_branch:
            stats.cond_branches += 1
            if op.prediction.taken == outcome.taken:
                stats.cond_branch_correct += 1
            stats.branch_resolution_cycles += (op.last_resolution_cycle
                                               - op.dispatch_cycle)
            stats.branch_resolution_count += 1
            self.predictor.commit_branch(inst.pc, bool(outcome.taken),
                                         op.prediction)
        elif inst.is_return:
            stats.returns += 1
            if op.prediction and op.prediction.target == outcome.next_pc:
                stats.returns_correct += 1
        elif inst.opcode.is_indirect:
            self.predictor.commit_indirect(inst.pc, outcome.next_pc)

        if inst.opcode.is_mem:
            stats.memory_ops += 1
        if op.is_store and self.ir is not None:
            self.ir.on_store_commit(outcome.mem_addr, inst.opcode.mem_bytes)

        if self.vp is not None:
            self._train_vp(op)
        if op.reuse_hit_full:
            stats.ir_result_reused += 1
        if op.reuse_hit_addr:
            stats.ir_addr_reused += 1

        if self.oracle is not None:
            self._verify_commit(op)
        if self.on_commit is not None:
            self.on_commit(op, self.cycle)

    def _train_vp(self, op: InflightOp) -> None:
        inst, outcome = op.inst, op.outcome
        stats = self.stats
        if self.config.vp.predict_results and inst.dest_regs \
                and outcome.result is not None and not inst.opcode.is_store \
                and op.executes and not op.is_control:
            stats.vp_result_lookups += 1
            if op.predicted:
                stats.vp_result_predicted += 1
                if op.predicted_value == outcome.result:
                    stats.vp_result_correct += 1
            self.vp.train_result(inst.pc, outcome.result,
                                 op.predicted_value if op.predicted else None)
        if inst.opcode.is_mem:
            stats.vp_addr_lookups += 1
            if op.addr_predicted:
                stats.vp_addr_predicted += 1
                if op.predicted_addr == outcome.mem_addr:
                    stats.vp_addr_correct += 1
            self.vp.train_address(inst.pc, outcome.mem_addr,
                                  op.predicted_addr if op.addr_predicted
                                  else None)

    def _verify_commit(self, op: InflightOp) -> None:
        expected = self.oracle.step()
        if expected.pc != op.inst.pc:
            raise SimulationError(
                f"commit diverged: oracle at {expected.pc:#x}, "
                f"core committed {op.inst.pc:#x} (cycle {self.cycle})")
        if expected.writes != op.outcome.writes:
            raise SimulationError(
                f"commit wrote {op.outcome.writes} but oracle wrote "
                f"{expected.writes} at {op.inst}")

    # --------------------------------------------------------------------- stats --

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.fetched = self.fetch_unit.fetched
        stats.icache_misses = self.fetch_unit.icache.misses
        stats.dcache_misses = self.dcache.misses
