"""The out-of-order timing core integrating VP and IR.

Pipeline structure mirrors Figure 1/2 of the paper: fetch -> decode/rename/
dispatch -> (out-of-order issue/execute) -> commit, over the Table 1
machine.  Architectural semantics are computed *at dispatch* against a
checkpointed speculative state (the SimpleScalar ``sim-outorder`` design),
so the model runs wrong paths with real values; the back end models timing
and — under value prediction — the propagation of *mispredicted* values:
each execution re-evaluates its operation over its operands' current
(possibly wrong) values, so spurious branch resolutions and selective
re-execution behave like the hardware the paper describes.

Key timing conventions (see also :mod:`repro.uarch.entry`):

* a value produced in cycle ``r`` can feed an execution issuing in ``r+1``;
* value-predicted / reused values are available at the dispatch cycle;
* an instruction commits no earlier than the cycle after it completed and
  became non-value-speculative;
* a verified misprediction corrects dependents ``verify_latency`` cycles
  after the verifying execution completes, and only the first instruction
  of a dependent chain pays that penalty (Section 4.1.3).

Scheduling is event-driven rather than scan-driven (see
``docs/internals.md``): completions and resolutions live on a heap keyed
by cycle, issue examines only the wakeup queue of instructions whose
state can actually change (not the whole ROB), every static instruction
is pre-decoded once into a flat :class:`~repro.uarch.decode.StaticOp`
record, and when the machine is provably idle until a known future cycle
the core fast-forwards the cycle counter instead of stepping through
empty cycles.  All of it is timing-transparent: the statistics are
byte-identical to the scan-driven core's (``tests/golden`` pins this).
"""

from __future__ import annotations

import gc
import heapq
from collections import deque
from operator import attrgetter
from typing import Deque, Dict, List, Optional, Tuple

from ..functional.compiled import CompiledProgram, HALT
from ..functional.simulator import FunctionalSimulator, SimulationError
from ..isa.opcodes import (
    OpClass,
    REG_FCC,
    REG_HI,
    REG_LO,
    div_hi_lo,
    mult_hi_lo,
    u32,
)
from ..isa.program import Program
from ..metrics.profiling import CoreProfile
from ..metrics.stats import SimStats
from ..reuse.scheme import ReuseDecision, ReuseEngine
from ..vp.predictors import ValuePredictor, make_predictor
from .branch_predictor import BranchPredictorUnit
from .cache import PortTracker, SetAssocCache
from .config import BranchPolicy, IRValidation, MachineConfig, ReexecPolicy
from .decode import DecodeTable, StaticOp
from .entry import InflightOp
from .fetch import FetchedInst, FetchUnit
from .functional_units import FunctionalUnits
from .spec_state import SpeculativeState

_EVENT_COMPLETE = 0
_EVENT_RESOLVE = 1

# Sentinel "no pending activity" cycle for the fast-forward bound.
_FAR_FUTURE = 1 << 62

_seq_key = attrgetter("seq")


class OutOfOrderCore:
    """Cycle-stepped 4-way out-of-order processor model."""

    def __init__(self, config: MachineConfig, program: Program):
        self.config = config
        self.program = program
        self.stats = SimStats(config_name=config.name)

        self.decode = DecodeTable(program)
        self.predictor = BranchPredictorUnit(config.bpred)
        self.fetch_unit = FetchUnit(config, self.decode, self.predictor)
        self.fus = FunctionalUnits(config)
        self.dcache = SetAssocCache(config.dcache, "dcache")
        self.dcache_ports = PortTracker(config.dcache.ports)
        self.spec = SpeculativeState(program)

        self.rename: Dict[int, InflightOp] = {}
        self.rob: Deque[InflightOp] = deque()
        self.lsq: Deque[InflightOp] = deque()
        self.events: List[Tuple[int, int, int, InflightOp]] = []
        # Wakeup queue: the only instructions issue ever examines.  An op
        # is resident from dispatch until it issues or can never issue
        # again; re-executions re-enter through _queue_for_issue.  Kept in
        # seq order (re-adds mark the queue dirty; it is re-sorted at the
        # top of _issue) so issue priority matches ROB order exactly.
        self.issue_queue: List[InflightOp] = []
        self._issue_q_dirty = False

        self.cycle = 0
        self.seq = 0
        self.unresolved_control = 0
        self.halt_dispatched: Optional[InflightOp] = None
        self.halted = False

        # Cycle-skip fast-forward (disable for A/B timing experiments;
        # statistics are identical either way).
        self.fast_forward = True
        self.profile: Optional[CoreProfile] = None
        # Observation-only telemetry sink (enable_telemetry); never feeds
        # a value back, so stats are identical with or without it.
        self.telemetry = None

        self.vp = make_predictor(config.vp) if config.vp.enabled else None
        self.ir: Optional[ReuseEngine] = (
            ReuseEngine(config.ir, self.stats) if config.ir.enabled else None)
        self.verify_latency = config.vp.verify_latency if config.vp.enabled \
            else 0
        # Without value prediction and without late-validated reuse, no
        # mechanism can inject a wrong value: every execution reads exactly
        # the dispatch-time (oracle) operands, so completion can return the
        # dispatch outcome and finalization can skip the value comparisons.
        # (Timing-only replays — e.g. a load whose forwarding relationship
        # changes when a reused store address resolves — still occur and
        # still go through the stale/re-execution machinery.)
        self._pure_values = not (
            config.vp.enabled
            or (config.ir.enabled
                and config.ir.validation == IRValidation.LATE))

        if config.vp.enabled and config.ir.enabled and not config.hybrid:
            raise ValueError(
                "VP and IR are separate techniques in the paper; enable "
                "one at a time (or set hybrid=True for the combined "
                "scheme the paper's conclusion suggests)")

        self.oracle: Optional[FunctionalSimulator] = (
            FunctionalSimulator(program) if config.verify_commits else None)

        # Optional observer invoked as on_commit(op, cycle) for every
        # committed instruction (tracing, examples, custom statistics).
        self.on_commit = None

    # ------------------------------------------------------------------ run --

    def run(self, max_cycles: Optional[int] = None,
            max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until halt commits or a budget is exhausted."""
        step = self.step
        fast_forward = self._fast_forward
        stats = self.stats
        # The dataflow graph is cyclic (producer <-> consumer), which the
        # cyclic collector would otherwise rescan every few thousand
        # dispatches.  Commit and squash break those cycles explicitly
        # (see _commit_one/_squash_after), so plain refcounting reclaims
        # every InflightOp and the collector can be paused for the run.
        restore_gc = gc.isenabled()
        if restore_gc:
            gc.disable()
        try:
            while not self.halted:
                if max_cycles is not None and self.cycle >= max_cycles:
                    break
                if (max_instructions is not None
                        and stats.committed >= max_instructions):
                    break
                step()
                if self.fast_forward:
                    fast_forward(max_cycles)
        finally:
            if restore_gc:
                gc.enable()
        self._finalize_stats()
        if self.telemetry is not None:
            self.telemetry.finalize(self)
        return self.stats

    def skip(self, instructions: int) -> None:
        """Functionally fast-forward before timing simulation starts.

        Mirrors the paper's warm-up skip (1-2.5 billion instructions there).
        Must be called before the first :meth:`step`.
        """
        if self.cycle or self.rob:
            raise SimulationError("skip() must precede timing simulation")
        # Fast-forward closures mutate the speculative state exactly like
        # the interpreted loop did, but with no ExecOutcome allocation;
        # like before, the halt is left unexecuted for the front end.
        compiled = CompiledProgram(self.program)
        ff_entry = compiled.ff_entry
        spec = self.spec
        pc = self.program.entry_point
        executed = 0
        while executed < instructions:
            fn = ff_entry(pc)
            if fn is None:
                raise SimulationError(f"skip ran off program at {pc:#x}")
            if fn is HALT:
                break
            pc = fn(spec)
            executed += 1
        self.fetch_unit.fetch_pc = pc
        if self.oracle is not None:
            self.oracle.skip(executed)

    def restore_warm(self, warm) -> None:
        """Adopt a warm-state checkpoint in place of :meth:`skip`.

        *warm* must come from :func:`repro.functional.checkpoint.capture`
        over the same program with the intended skip count (the store's
        content addressing guarantees this).  Afterwards the core is
        indistinguishable from one that just ran ``skip(warm.skip)``
        cold: speculative state holds the warm image, fetch starts at the
        first unexecuted instruction (the halt itself when the warm-up
        ran into one — the front end dispatches it, exactly like the
        cold path), and the commit-verify oracle sits at the same point.
        """
        if self.cycle or self.rob:
            raise SimulationError(
                "restore_warm() must precede timing simulation")
        self.spec.regs = list(warm.regs)
        self.spec.memory = warm.make_memory()
        self.fetch_unit.fetch_pc = warm.pc
        if self.oracle is not None:
            self.oracle.restore(warm)

    def step(self) -> None:
        """Advance one cycle (reverse pipeline order)."""
        if self.profile is not None:
            return self._step_profiled()
        self.cycle += 1
        self._commit()
        self._process_events()
        self._issue()
        self._dispatch()
        self.fetch_unit.step(self.cycle)
        self.stats.cycles = self.cycle
        if self.telemetry is not None:
            self.telemetry.on_cycle(self)

    def _step_profiled(self) -> None:
        """step() with per-phase wallclock accounting (``--profile``)."""
        profile = self.profile
        self.cycle += 1
        profile.cycles_stepped += 1
        profile.time_phase("commit", self._commit)
        profile.time_phase("events", self._process_events)
        profile.time_phase("issue", self._issue)
        profile.time_phase("dispatch", self._dispatch)
        profile.time_phase("fetch",
                           lambda: self.fetch_unit.step(self.cycle))
        self.stats.cycles = self.cycle
        if self.telemetry is not None:
            self.telemetry.on_cycle(self)

    def enable_profiling(self) -> CoreProfile:
        """Attach (and return) a :class:`CoreProfile` for this run."""
        self.profile = CoreProfile()
        return self.profile

    def enable_telemetry(self, sink=None, *, interval: Optional[int] = None,
                         trace_capacity: Optional[int] = None,
                         events: bool = True):
        """Attach (and return) a telemetry sink for this run.

        Pass a ready :class:`~repro.telemetry.sink.TelemetrySink`, or
        let this build one from *interval* / *trace_capacity* /
        *events*.  Off by default; the golden corpus pins the detached
        core and a transparency test pins statistic byte-identity with
        the sink attached.
        """
        if sink is None:
            from ..telemetry.sink import TelemetrySink
            kwargs = {"events": events}
            if interval is not None:
                kwargs["interval"] = interval
            if trace_capacity is not None:
                kwargs["trace_capacity"] = trace_capacity
            sink = TelemetrySink(**kwargs)
        self.telemetry = sink
        if self.ir is not None:
            self.ir.telemetry = sink
        return sink

    # ---------------------------------------------------------- fast-forward --

    def _fast_forward(self, max_cycles: Optional[int]) -> None:
        """Jump over cycles in which provably nothing can happen.

        Only the cycle counter moves: by construction no event fires, no
        instruction becomes issuable/committable and the front end cannot
        advance strictly before the target, so stepping through the gap
        would only have burned wallclock.  Under-estimating the jump is
        always safe (the next step re-derives it).
        """
        if self.halted:
            return
        target = self._next_activity_cycle()
        if max_cycles is not None and target > max_cycles + 1:
            # Land exactly on the budget so stats.cycles matches a core
            # that stepped every empty cycle up to the limit.
            target = max_cycles + 1
        elif target >= _FAR_FUTURE:
            return  # unbounded run with no pending work: spin, as before
        if target <= self.cycle + 1:
            return
        skipped = target - 1 - self.cycle
        self.cycle = target - 1
        self.stats.cycles = self.cycle
        if self.profile is not None:
            self.profile.cycles_skipped += skipped
            self.profile.skips += 1
        if self.telemetry is not None:
            # Flush interval boundaries crossed by the jump.  The skipped
            # span is provably idle, so the boundary rows carry zero
            # deltas and the (unchanged) current occupancies — exactly
            # what stepping through the gap would have sampled.
            self.telemetry.on_cycle(self)

    def _next_activity_cycle(self) -> int:
        """Earliest future cycle at which machine state can change.

        Returns ``cycle + 1`` ("no skip") whenever anything might happen
        next cycle; every subsystem contributes a conservative bound:

        * the event heap's top entry (never skip past a scheduled event);
        * fetch: imminent unless stalled (bound: ``stall_until``), out of
          queue room, or blocked on a redirect (event-driven);
        * dispatch: imminent when the queue head clears the ROB/LSQ/
          checkpoint limits (unblocking is commit- or event-driven);
        * commit: the head's ``nonspec_cycle + 1`` once it is completed
          and resolved;
        * the wakeup queue: a pending re-execution bounds at
          ``reexec_earliest``; an op whose operands are all broadcast is
          imminent; one waiting on an in-flight producer is covered by
          that producer's completion event (or by the producer itself,
          which sits earlier in this same queue).
        """
        no_skip = self.cycle + 1
        bound = _FAR_FUTURE

        events = self.events
        if events:
            bound = events[0][0]
            if bound <= no_skip:
                return no_skip

        fetch = self.fetch_unit
        if not fetch.blocked and fetch.room() > 0:
            if fetch.stall_until > no_skip:
                if fetch.stall_until < bound:
                    bound = fetch.stall_until
            else:
                return no_skip

        queue = fetch.queue
        if queue and self.halt_dispatched is None:
            head_op = queue[0].op
            if len(self.rob) < self.config.rob_size \
                    and (not head_op.is_mem
                         or len(self.lsq) < self.config.lsq_size) \
                    and (not head_op.needs_checkpoint
                         or self.unresolved_control
                         < self.config.max_unresolved_branches):
                return no_skip  # head is dispatchable next cycle

        rob = self.rob
        if rob:
            head = rob[0]
            if head.completed and head.nonspec_cycle is not None \
                    and (not head.is_control or head.resolved_final):
                commit_at = head.nonspec_cycle + 1
                if commit_at <= no_skip:
                    return no_skip
                if commit_at < bound:
                    bound = commit_at

        for op in self.issue_queue:
            if op.squashed or op.issued:
                continue
            if op.completed and op.reexec_earliest is None:
                continue
            if op.reexec_earliest is not None:
                if op.reexec_earliest <= no_skip:
                    return no_skip
                if op.reexec_earliest < bound:
                    bound = op.reexec_earliest
                continue
            # Never executed: waiting on operands (or disambiguation).
            if op.is_load and (op.addr_reused or op.addr_predicted):
                return no_skip  # can issue on the predicted address
            waiting_on_event = False
            for reg, producer in op.producers.items():
                if producer.reg_ready_cycle(reg) is None:
                    waiting_on_event = True
                    break
            if not waiting_on_event:
                return no_skip  # all operands broadcast: issue imminent
        return bound

    # ---------------------------------------------------------------- events --

    def _schedule(self, cycle: int, kind: int, op: InflightOp) -> None:
        heapq.heappush(self.events, (cycle, op.seq, kind, op))

    def _process_events(self) -> None:
        events = self.events
        cycle = self.cycle
        profile = self.profile
        heappop = heapq.heappop
        while events and events[0][0] <= cycle:
            _, _, kind, op = heappop(events)
            if profile is not None:
                profile.events_processed += 1
            if op.squashed:
                continue
            if kind == _EVENT_COMPLETE:
                if op.completes_at == cycle and op.issued:
                    self._on_complete(op)
            elif kind == _EVENT_RESOLVE:
                if not op.resolved_final:
                    taken, target = self._final_resolution(op)
                    self._resolve_control(op, taken, target, final=True)

    # --------------------------------------------------------------- dispatch --

    def _dispatch(self) -> None:
        dispatched = 0
        fetch = self.fetch_unit
        while dispatched < self.config.decode_width and fetch.queue:
            fetched = fetch.queue[0]
            meta = fetched.op
            if fetched.fetch_cycle >= self.cycle:
                break  # fetched this very cycle; decode next cycle
            if self.halt_dispatched is not None:
                break
            if len(self.rob) >= self.config.rob_size:
                break
            if meta.is_mem and len(self.lsq) >= self.config.lsq_size:
                break
            if meta.needs_checkpoint and (self.unresolved_control
                                          >= self.config
                                          .max_unresolved_branches):
                break
            fetch.pop()
            self._dispatch_one(fetched)
            dispatched += 1
            self.stats.dispatched += 1
            if meta.is_halt:
                break
            # A reused branch that squashed at dispatch cleared the queue,
            # which ends this loop naturally.

    def _dispatch_one(self, fetched: FetchedInst) -> InflightOp:
        meta = fetched.op
        regs = self.spec.regs
        src_values = {reg: regs[reg] for reg in meta.src_regs}
        outcome = meta.exec_fn(self.spec)
        self.seq += 1
        op = InflightOp(self.seq, meta, outcome, self.cycle)
        op.src_values = src_values
        rename = self.rename
        for reg in meta.src_regs:
            producer = rename.get(reg)
            if producer is None:
                continue
            op.producers[reg] = producer
            if producer.nonspec_cycle is None or not producer.completed:
                producer.consumers.append((op, reg))
        for reg in meta.dest_regs:
            rename[reg] = op

        self.rob.append(op)
        if meta.is_mem:
            self.lsq.append(op)

        if self.telemetry is not None:
            self.telemetry.emit("dispatch", self.cycle, op.seq, meta.pc,
                                {"opcode": meta.opcode.name})

        if op.is_control:
            self._dispatch_control(op, fetched)
        if not op.executes:
            self._complete_at_dispatch(op)
        if meta.is_halt:
            self.halt_dispatched = op

        if self.ir is not None and op.executes:
            self._apply_reuse(op)
        if self.vp is not None and op.executes and not op.is_control \
                and not op.reused:
            self._apply_value_prediction(op)

        if op.executes and not op.completed:
            # Enter the wakeup queue only if issue is at least conceivable:
            # an op with a producer that has not completed parks outside
            # the queue until that producer's completion event wakes it.
            # Loads with a reused/predicted address can issue without the
            # base register, so they always enter.
            park = False
            if not (op.is_load and (op.addr_reused or op.addr_predicted)):
                for reg, producer in op.producers.items():
                    if reg == REG_HI and producer.meta.writes_hi_lo:
                        ready = producer.hi_ready_cycle
                    else:
                        ready = producer.value_ready_cycle
                    if ready is None:
                        park = True
                        break
            if not park:
                self._queue_for_issue(op)
        return op

    def _dispatch_control(self, op: InflightOp, fetched: FetchedInst) -> None:
        meta = op.meta
        op.prediction = fetched.prediction
        if meta.is_branch:
            op.believed_taken = fetched.prediction.taken
            op.believed_target = meta.target
        else:
            op.believed_taken = True
            op.believed_target = (fetched.prediction.target
                                  if fetched.prediction else meta.target)
        if op.needs_checkpoint:
            op.checkpoint = self.spec.take_checkpoint(meta.pc)
            op.rename_snapshot = dict(self.rename)
            self.unresolved_control += 1
        else:
            # Direct j/jal: fetch followed the target; nothing to resolve.
            op.resolved_final = True
            op.last_resolution_cycle = self.cycle

    def _complete_at_dispatch(self, op: InflightOp) -> None:
        """Non-executing ops (j/jal/nop/halt) are done at dispatch."""
        op.completed = True
        op.used_values = dict(op.src_values)
        op.last_completion_cycle = self.cycle
        op.ready_cycle = self.cycle
        op.value_ready_cycle = self.cycle
        op.current_value = op.outcome.result
        op.nonspec_cycle = self.cycle

    # -- VP at dispatch --------------------------------------------------------------

    def _apply_value_prediction(self, op: InflightOp) -> None:
        meta, outcome = op.meta, op.outcome
        if self.config.vp.predict_results and meta.has_dest \
                and outcome.result is not None and not meta.is_store:
            predicted = self.vp.predict_result(meta.pc, outcome.result,
                                               key=meta.vp_result_key)
            if predicted is not None:
                op.predicted = True
                op.predicted_value = predicted
                op.value_ready_cycle = self.cycle
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_predict", self.cycle, op.seq, meta.pc,
                        {"what": "result", "value": predicted})
        if meta.is_mem:
            predicted_addr = self.vp.predict_address(meta.pc,
                                                     outcome.mem_addr,
                                                     key=meta.vp_addr_key)
            if predicted_addr is not None:
                op.addr_predicted = True
                op.predicted_addr = predicted_addr
                op.current_addr = predicted_addr
                if op.is_store:
                    op.addr_known_cycle = self.cycle  # speculative
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_predict", self.cycle, op.seq, meta.pc,
                        {"what": "address", "value": predicted_addr})

    # -- IR at dispatch --------------------------------------------------------------

    def _apply_reuse(self, op: InflightOp) -> None:
        decision = self.ir.test(op, self.cycle, self._store_conflict)
        if not decision.hit:
            return
        op.reuse_hit_full = decision.full
        op.reuse_hit_addr = decision.address
        if self.config.ir.validation == IRValidation.EARLY:
            self._apply_reuse_early(op, decision)
        else:
            self._apply_reuse_late(op, decision)

    def _apply_reuse_early(self, op: InflightOp,
                           decision: ReuseDecision) -> None:
        entry = decision.entry
        if decision.address:
            op.addr_reused = True
            op.current_addr = entry.address
            op.addr_known_cycle = self.cycle  # non-speculative
        if not decision.full:
            return
        op.reused = True
        op.reuse_value = entry.result
        op.completed = True
        op.used_values = dict(op.src_values)
        op.last_completion_cycle = self.cycle
        op.ready_cycle = self.cycle
        op.value_ready_cycle = self.cycle
        op.hi_ready_cycle = self.cycle
        op.nonspec_cycle = self.cycle
        op.current_value = entry.result
        op.current_hi = entry.result_hi
        if op.is_load:
            op.used_addr = entry.address
        if self.config.verify_commits and not op.is_control:
            if entry.result != op.outcome.result:
                raise SimulationError(
                    f"reuse produced wrong value at {op.inst}")
        if op.meta.is_branch:
            self.stats.reused_branches += 1
            self._resolve_control(op, bool(entry.result), op.meta.target,
                                  final=True)
        elif op.meta.is_indirect:
            op.current_addr = entry.result
            self.stats.reused_branches += 1
            self._resolve_control(op, True, entry.result, final=True)

    def _apply_reuse_late(self, op: InflightOp,
                          decision: ReuseDecision) -> None:
        """Figure 3's *late* experiment: hits act like perfect predictions."""
        entry = decision.entry
        if decision.address:
            op.addr_predicted = True
            op.predicted_addr = entry.address
            op.current_addr = entry.address
            if op.is_store:
                op.addr_known_cycle = self.cycle
        if decision.full:
            # The hit marker feeds same-cycle dependence chaining in the
            # reuse test: detection is identical to early mode, only the
            # validation point moves to the execute stage.
            op.reuse_value = entry.result
            if op.meta.has_dest:
                op.predicted = True
                op.predicted_value = entry.result
                op.value_ready_cycle = self.cycle

    # ------------------------------------------------------------------- issue --

    def _queue_for_issue(self, op: InflightOp) -> None:
        """Add *op* to the wakeup queue (idempotent)."""
        if op.in_issue_queue or op.squashed:
            return
        queue = self.issue_queue
        if queue and queue[-1].seq > op.seq:
            self._issue_q_dirty = True  # re-add of an older op: re-sort
        queue.append(op)
        op.in_issue_queue = True

    def _issue(self) -> None:
        queue = self.issue_queue
        if not queue:
            return
        if self._issue_q_dirty:
            queue.sort(key=_seq_key)
            self._issue_q_dirty = False
        cycle = self.cycle
        width = self.config.issue_width
        stats = self.stats
        ports = self.dcache_ports
        pool_list = self.fus.pool_list
        profile = self.profile
        issued = 0
        keep: List[InflightOp] = []
        keep_append = keep.append
        for index, op in enumerate(queue):
            if issued >= width:
                keep.extend(queue[index:])
                break
            if profile is not None:
                profile.issue_queue_scanned += 1
            # Drop entries that can never want issue again: squashed ops,
            # in-flight executions (completion re-queues via reexec), and
            # completed ops with no pending re-execution.
            if op.squashed or op.issued \
                    or (op.completed and op.reexec_earliest is None):
                op.in_issue_queue = False
                continue
            # The _wants_issue gates of the scan-driven core:
            if op.dispatch_cycle >= cycle:
                keep_append(op)
                continue
            if op.reexec_earliest is not None and cycle < op.reexec_earliest:
                keep_append(op)
                continue
            meta = op.meta
            if op.is_load:
                address = self._load_address(op)
                if address is None:
                    producer = op.producers.get(meta.rs)
                    if op.reexec_earliest is None and producer is not None \
                            and producer.reg_ready_cycle(meta.rs) is None:
                        # Park: the base register's producer has not even
                        # completed, so its completion event (which wakes
                        # consumers) is the next time this can change.
                        op.in_issue_queue = False
                    else:
                        keep_append(op)
                    continue
                # Table 1: loads execute only after all preceding store
                # addresses are known (reused/predicted count as known).
                gated = False
                seq = op.seq
                for store in self.lsq:
                    if store.seq >= seq:
                        break
                    if not store.is_store or store.squashed:
                        continue
                    known = store.addr_known_cycle
                    if known is None or known >= cycle:
                        gated = True
                        break
                if gated:
                    keep_append(op)
                    continue
                forwarding = self._forwarding_store(op, address)
                if forwarding is not None:
                    # Need the store's data before it can be bypassed.
                    data_reg = forwarding.meta.rd
                    producer = forwarding.producers.get(data_reg)
                    if producer is not None:
                        ready = producer.reg_ready_cycle(data_reg)
                        if ready is None or ready >= cycle:
                            keep_append(op)
                            continue
                needs_port = forwarding is None
            else:
                blocked = False
                park = False
                for reg, producer in op.producers.items():
                    if reg == REG_HI and producer.meta.writes_hi_lo:
                        ready = producer.hi_ready_cycle
                    else:
                        ready = producer.value_ready_cycle
                    if ready is None:
                        # Producer never completed: its completion event
                        # wakes consumers, so leave the queue entirely.
                        # (Completed re-exec candidates stay resident —
                        # the wake walk skips completed consumers.)
                        park = op.reexec_earliest is None
                        blocked = True
                        break
                    if ready >= cycle:
                        blocked = True
                        break
                if blocked:
                    if park:
                        op.in_issue_queue = False
                    else:
                        keep_append(op)
                    continue
                address = None
                forwarding = None
                needs_port = False
            pool = pool_list[meta.op_class_index]
            busy = pool.busy_until
            unit = -1
            for i in range(len(busy)):
                if busy[i] <= cycle:
                    unit = i
                    break
            stats.resource_requests += 1
            if unit < 0 or (needs_port and ports.available(cycle) == 0):
                stats.resource_denials += 1
                keep_append(op)
                continue
            busy[unit] = cycle + meta.issue_interval
            pool.grants += 1
            if needs_port:
                ports.try_acquire(cycle)
            self._start_execution(op, address, forwarding)
            op.in_issue_queue = False
            issued += 1
        self.issue_queue = keep

    def _load_address(self, op: InflightOp) -> Optional[int]:
        """The address a load issuing now would use, or None if unknown."""
        meta = op.meta
        base = meta.rs
        producer = op.producers.get(base)
        if producer is None:
            return u32(op.src_values.get(base, 0) + meta.imm)
        ready = producer.reg_ready_cycle(base)
        if ready is not None and ready < self.cycle:
            current = producer.value_for_reg(base)
            if current is None:
                current = op.src_values[base]
            return u32(current + meta.imm)
        if op.addr_reused or op.addr_predicted:
            return op.current_addr
        return None

    def _forwarding_store(self, op: InflightOp,
                          address: int) -> Optional[InflightOp]:
        """Youngest older store whose known address overlaps the load's."""
        nbytes = op.meta.mem_bytes
        seq = op.seq
        best = None
        for store in self.lsq:
            if store.seq >= seq:
                break
            if not store.is_store or store.squashed:
                continue
            store_addr = store.current_addr
            if store_addr is None:
                continue
            if store_addr < address + nbytes \
                    and address < store_addr + store.meta.mem_bytes:
                best = store
        return best

    def _start_execution(self, op: InflightOp,
                         address: Optional[int] = None,
                         forwarding: Optional[InflightOp] = None) -> None:
        """Begin executing *op*; for loads the issue logic passes in the
        effective address and forwarding store it already computed."""
        if self.telemetry is not None:
            self.telemetry.emit("issue", self.cycle, op.seq, op.meta.pc,
                                {"reexec": op.exec_count > 0})
        op.issued = True
        op.issue_cycle = self.cycle
        op.reexec_earliest = None
        op.stale = False
        # Pure-value configurations read exactly the dispatch-time values;
        # alias the dict (it is never mutated) instead of rebuilding it.
        op.issue_read_values = (op.src_values if self._pure_values
                                else op.read_current_operands())
        latency = op.meta.latency
        if op.is_mem:
            if not op.is_load:
                address = self._store_address(op)
            op.issue_addr = address
            if op.is_load:
                op.forwarded_from = forwarding
                if forwarding is None:
                    latency += self.dcache.access_latency(address)
                    self.stats.dcache_accesses += 1
        op.completes_at = self.cycle + latency
        self._schedule(op.completes_at, _EVENT_COMPLETE, op)

    def _store_address(self, op: InflightOp) -> int:
        values = op.issue_read_values
        base = op.meta.rs
        return u32(values.get(base, op.src_values.get(base, 0))
                   + op.meta.imm)

    # --------------------------------------------------------------- completion --

    def _on_complete(self, op: InflightOp) -> None:
        op.issued = False
        op.exec_count += 1
        self.stats.execution_attempts += 1
        first = not op.completed
        if first:
            self.stats.executed_instructions += 1
        op.completed = True
        op.last_completion_cycle = self.cycle
        op.used_values = op.issue_read_values
        if self.telemetry is not None:
            self.telemetry.emit("complete", self.cycle, op.seq, op.meta.pc,
                                {"first": first,
                                 "executions": op.exec_count})

        new_value, new_hi = self._evaluate(op)
        previous = op.current_value
        if previous is None and op.predicted:
            previous = op.predicted_value
        previous_hi = op.current_hi
        op.current_value = new_value
        op.current_hi = new_hi

        if op.ready_cycle is None:
            op.ready_cycle = self.cycle
        if op.value_ready_cycle is None:
            op.value_ready_cycle = self.cycle
        if op.hi_ready_cycle is None:
            op.hi_ready_cycle = self.cycle

        if first:
            # Wake parked consumers: ops that left the wakeup queue while
            # this (their producer's first) execution was in flight.
            for consumer, _reg in op.consumers:
                if not consumer.in_issue_queue and not consumer.issued \
                        and not consumer.completed and not consumer.squashed:
                    self._queue_for_issue(consumer)

        if op.is_mem:
            self._complete_memory(op)

        if self.ir is not None:
            self.ir.insert(op)

        if op.stale:
            op.stale = False
            self._schedule_reexec(op, self.cycle + 1)
        else:
            self._try_finalize(op)

        correction = (op.nonspec_cycle
                      if op.nonspec_cycle is not None
                      and op.nonspec_cycle >= self.cycle else self.cycle)
        if previous is not None and previous != new_value:
            self._propagate_change(op, correction, hi=False)
        if previous_hi is not None and previous_hi != new_hi:
            self._propagate_change(op, correction, hi=True)

        if op.nonspec_cycle is None and not op.stale \
                and op.reexec_earliest is None and not self._pure_values:
            # Pure-value lane: inputs are never wrong, so no corrective
            # self-scheduled re-execution can ever be needed.
            self._maybe_schedule_final_reexec(op)

        if op.is_control and not op.resolved_final \
                and op.nonspec_cycle is None:
            # Inputs still value-speculative: under SB the branch resolves
            # now anyway (may be spurious); under NSB it waits (Sec 4.1.4).
            if self.vp is not None and self.config.vp.branch_policy \
                    == BranchPolicy.SPECULATIVE:
                taken, target = self._computed_control(op)
                self._resolve_control(op, taken, target, final=False)

        if op.is_store:
            if op.addr_known_cycle is None:
                op.addr_known_cycle = self.cycle
            self._check_memory_violations(op)
            self._poke_younger_loads(op)

        # Safety net: a pending re-execution raised while this execution
        # was in flight must re-enter the wakeup queue.
        if op.reexec_earliest is not None and not op.squashed:
            self._queue_for_issue(op)

    def _evaluate(self, op: InflightOp) -> Tuple[Optional[int], Optional[int]]:
        """Result of this execution over the values actually read."""
        meta, outcome = op.meta, op.outcome
        if self._pure_values:
            # Operands are the oracle values by construction: the result
            # is the dispatch outcome (side effects mirrored from below).
            if op.is_load:
                op.used_addr = op.issue_addr
                return outcome.result, None
            if op.is_store:
                op.used_addr = op.issue_addr
                op.current_addr = op.issue_addr
                return None, None
            if meta.is_indirect:
                op.current_addr = outcome.next_pc
                return (outcome.result, None) if meta.is_call \
                    else (None, None)
            if meta.is_branch:
                return int(outcome.taken), None
            return outcome.result, outcome.result_hi
        values = op.used_values
        if op.is_load:
            address = op.issue_addr
            op.used_addr = address
            if address == outcome.mem_addr:
                return outcome.result, None
            return self.spec.read_mem(address, meta.mem_bytes,
                                      meta.mem_signed), None
        if op.is_store:
            op.used_addr = op.issue_addr
            op.current_addr = op.issue_addr
            return None, None
        if meta.is_indirect:
            a, _ = self._operand_pair(op, values)
            op.current_addr = a  # computed jump target
            return (outcome.result, None) if meta.is_call \
                else (None, None)
        if meta.is_branch:
            if op.inputs_match_oracle(values):
                return int(outcome.taken), None
            a, b = self._operand_pair(op, values)
            return int(bool(meta.eval_fn(a, b, meta.imm))), None
        if op.inputs_match_oracle(values):
            return outcome.result, outcome.result_hi
        a, b = self._operand_pair(op, values)
        if meta.writes_hi_lo:
            pair = (mult_hi_lo(a, b) if meta.is_mult
                    else div_hi_lo(a, b))
            return pair[1], pair[0]
        return u32(meta.eval_fn(a, b, meta.imm)), None

    def _operand_pair(self, op: InflightOp,
                      values: Dict[int, int]) -> Tuple[int, int]:
        meta = op.meta
        pair_reg = meta.pair_reg
        if pair_reg >= 0:  # mfhi/mflo/fcc-branch: one special operand
            return values.get(pair_reg, 0), 0
        src_values = op.src_values
        rs, rt = meta.rs, meta.rt
        a = values.get(rs, src_values.get(rs, 0)) if rs else 0
        b = values.get(rt, src_values.get(rt, 0)) if rt else 0
        return a, b

    def _complete_memory(self, op: InflightOp) -> None:
        if op.is_load:
            op.current_addr = op.used_addr
            if op.addr_known_cycle is None:
                op.addr_known_cycle = self.cycle

    def _computed_control(self, op: InflightOp) -> Tuple[bool, int]:
        if op.meta.is_branch:
            return bool(op.current_value), op.meta.target
        return True, op.current_value  # indirect jump: target is the value

    def _propagate_change(self, op: InflightOp, correction_cycle: int,
                          hi: bool) -> None:
        """My broadcast value changed: dependents must re-execute.

        Only the head of a dependent chain pays the verification penalty
        (correction_cycle already includes it); the rest re-issue as the
        corrected values flow (Section 4.1.3).
        """
        reexec_on_spec = (self.vp is None
                          or self.config.vp.reexec_policy
                          == ReexecPolicy.MULTIPLE)
        final = op.nonspec_cycle is not None
        writes_hi_lo = op.meta.writes_hi_lo
        for consumer, reg in op.consumers:
            if consumer.squashed:
                continue
            is_hi = reg == REG_HI and writes_hi_lo
            if is_hi != hi:
                continue
            if not (final or reexec_on_spec):
                continue  # NME: ignore speculative value changes
            if consumer.issued:
                consumer.stale = True
            elif consumer.completed:
                if consumer.used_values.get(reg) != op.value_for_reg(reg):
                    self._schedule_reexec(consumer, correction_cycle + 1)

    def _schedule_reexec(self, op: InflightOp, earliest: int) -> None:
        if op.squashed:
            return
        if self.telemetry is not None:
            self.telemetry.emit("reexec", self.cycle, op.seq, op.meta.pc,
                                {"earliest": earliest})
        if op.reexec_earliest is None or op.reexec_earliest > earliest:
            op.reexec_earliest = earliest
        op.nonspec_cycle = None
        if not op.issued:
            self._queue_for_issue(op)

    def _maybe_schedule_final_reexec(self, op: InflightOp) -> None:
        """My inputs were wrong and their producers already finalized:
        nobody will send another change event, so self-schedule the
        (single) re-execution after the corrected values."""
        latest = self.cycle
        mismatch = False
        for reg, producer in op.producers.items():
            if producer.nonspec_cycle is None:
                continue
            if op.used_values.get(reg) != producer.final_value_for_reg(reg):
                mismatch = True
                latest = max(latest, producer.nonspec_cycle)
        if op.is_load and op.used_addr != op.outcome.mem_addr \
                and self._load_address_final(op):
            mismatch = True
        if mismatch:
            self._schedule_reexec(op, latest + 1)

    def _load_address_final(self, op: InflightOp) -> bool:
        producer = op.producers.get(op.meta.rs)
        return producer is None or producer.nonspec_cycle is not None

    # --------------------------------------------------------------- finalization --

    def _try_finalize(self, op: InflightOp) -> None:
        """Establish non-speculative status (verification) if possible."""
        if op.squashed or op.nonspec_cycle is not None:
            return
        if not op.completed or op.issued or op.stale \
                or op.reexec_earliest is not None:
            return
        when = op.last_completion_cycle
        pure = self._pure_values
        for reg, producer in op.producers.items():
            nonspec = producer.nonspec_cycle
            if nonspec is None:
                return
            if not pure and op.used_values.get(reg) \
                    != producer.final_value_for_reg(reg):
                return
            if nonspec > when:
                when = nonspec
        if op.is_mem:
            if op.used_addr is not None \
                    and op.used_addr != op.outcome.mem_addr:
                # Wrong (predicted/propagated) address; once the base
                # register is final nobody else will wake us, so schedule
                # the corrective re-execution here.
                if self._load_address_final(op):
                    self._schedule_reexec(op, self.cycle + 1)
                return
            if op.is_load and not self._older_store_addrs_final(op):
                return
        if op.predicted or op.addr_predicted:
            when += self.verify_latency
        op.nonspec_cycle = when

        if op.is_control and not op.resolved_final:
            if when <= self.cycle:
                taken, target = self._final_resolution(op)
                self._resolve_control(op, taken, target, final=True)
            else:
                self._schedule(when, _EVENT_RESOLVE, op)

        if pure:
            # Values always agree: finalization only cascades.
            for consumer, reg in list(op.consumers):
                if consumer.squashed:
                    continue
                if consumer.completed and not consumer.issued:
                    self._try_finalize(consumer)
                if consumer.is_store or consumer.is_load:
                    self._poke_younger_loads(consumer)
        else:
            for consumer, reg in list(op.consumers):
                if consumer.squashed:
                    continue
                final_value = op.final_value_for_reg(reg)
                if consumer.issued:
                    if consumer.issue_read_values.get(reg) != final_value:
                        consumer.stale = True
                elif consumer.completed:
                    if consumer.used_values.get(reg) != final_value:
                        self._schedule_reexec(consumer,
                                              max(when, self.cycle) + 1)
                    else:
                        self._try_finalize(consumer)
                if consumer.is_store or consumer.is_load:
                    self._poke_younger_loads(consumer)
        if op.is_store:
            self._poke_younger_loads(op)

    def _older_store_addrs_final(self, op: InflightOp) -> bool:
        seq = op.seq
        for store in self.lsq:
            if store.seq >= seq:
                break
            if store.is_store and not store.squashed \
                    and not self._store_addr_final(store):
                return False
        return True

    def _store_addr_final(self, store: InflightOp) -> bool:
        if store.addr_reused:
            return True
        if not store.completed or store.used_addr != store.outcome.mem_addr:
            return False
        producer = store.producers.get(store.meta.rs)
        return producer is None or producer.nonspec_cycle is not None

    def _poke_younger_loads(self, mem_op: InflightOp) -> None:
        # Snapshot: finalizing a load can cascade into a branch resolution
        # that squashes (and therefore mutates) the LSQ.
        for load in list(self.lsq):
            if load.seq <= mem_op.seq or not load.is_load or load.squashed:
                continue
            self._try_finalize(load)

    def _check_memory_violations(self, store: InflightOp) -> None:
        """A store's address just resolved: replay loads it invalidates."""
        address = store.current_addr
        nbytes = store.meta.mem_bytes
        for load in self.lsq:
            if load.seq <= store.seq or not load.is_load or load.squashed:
                continue
            if not load.completed and not load.issued:
                continue
            load_addr = load.used_addr if load.completed else load.issue_addr
            if load_addr is None:
                continue
            load_bytes = load.meta.mem_bytes
            overlaps = (address < load_addr + load_bytes
                        and load_addr < address + nbytes)
            forwarded_here = load.forwarded_from is store
            if overlaps != forwarded_here:
                if load.issued:
                    load.stale = True
                else:
                    self._schedule_reexec(load, self.cycle + 1)

    def _store_conflict(self, op: InflightOp, address: int,
                        nbytes: int) -> bool:
        """Reuse-test helper: does an older in-flight store overlap?"""
        seq = op.seq
        for store in self.lsq:
            if store.seq >= seq:
                break
            if not store.is_store or store.squashed:
                continue
            store_addr = store.outcome.mem_addr
            if store_addr < address + nbytes \
                    and address < store_addr + store.meta.mem_bytes:
                return True
        return False

    # ---------------------------------------------------------------- resolution --

    def _final_resolution(self, op: InflightOp) -> Tuple[bool, int]:
        """The true (non-speculative) outcome of a control instruction."""
        if op.meta.is_branch:
            return bool(op.outcome.taken), op.meta.target
        return True, op.outcome.next_pc

    def _resolve_control(self, op: InflightOp, taken: bool, target: int,
                         final: bool) -> None:
        actual_next = target if taken else op.meta.next_pc
        believed_next = (op.believed_target if op.believed_taken
                         else op.meta.next_pc)
        op.last_resolution_cycle = self.cycle
        if self.telemetry is not None:
            self.telemetry.emit(
                "branch_resolve", self.cycle, op.seq, op.meta.pc,
                {"taken": taken, "target": target, "final": final,
                 "redirected": actual_next != believed_next})
        if actual_next != believed_next:
            had_path = believed_next is not None
            op.believed_taken = taken
            op.believed_target = target
            self._squash_after(op, actual_next, count=had_path,
                               spurious=not final)
        if final and not op.resolved_final:
            op.resolved_final = True
            if op.nonspec_cycle is None:
                op.nonspec_cycle = self.cycle
            if op.checkpoint is not None:
                self.unresolved_control -= 1

    def _squash_after(self, op: InflightOp, redirect: int, count: bool,
                      spurious: bool) -> None:
        if count:
            self.stats.branch_squashes += 1
            if spurious:
                self.stats.spurious_squashes += 1
        if self.telemetry is not None:
            victims = sum(1 for v in self.rob if v.seq > op.seq)
            self.telemetry.emit(
                "squash", self.cycle, op.seq, op.meta.pc,
                {"victims": victims, "spurious": spurious,
                 "redirect": redirect})
        while self.rob and self.rob[-1].seq > op.seq:
            victim = self.rob.pop()
            victim.squashed = True
            self.stats.squashed_instructions += 1
            if self.vp is not None:
                if victim.predicted:
                    self.vp.abort_result(victim.meta.pc)
                if victim.addr_predicted:
                    self.vp.abort_address(victim.meta.pc)
            if victim.exec_count > 0:
                self.stats.squashed_executed += 1
                if self.ir is not None:
                    self.ir.note_squashed(victim)
            if victim.checkpoint is not None:
                if not victim.resolved_final:
                    self.unresolved_control -= 1
                self.spec.release_checkpoint(victim.checkpoint)
                victim.checkpoint = None
            # As at commit: break the dataflow cycles so the squashed
            # subgraph is reclaimed by refcounting alone.  Live ops only
            # ever read a squashed op's `squashed` flag.
            victim.consumers.clear()
            victim.rename_snapshot = None
            victim.forwarded_from = None
        while self.lsq and self.lsq[-1].squashed:
            self.lsq.pop()
        if self.telemetry is not None and op.checkpoint is not None:
            self.telemetry.emit("checkpoint_restore", self.cycle, op.seq,
                                op.meta.pc, {"redirect": redirect})
        self.spec.restore(op.checkpoint)
        self.rename = dict(op.rename_snapshot)
        self._repair_predictor(op)
        self.fetch_unit.redirect(redirect, self.cycle)
        if self.halt_dispatched is not None and self.halt_dispatched.squashed:
            self.halt_dispatched = None

    def _repair_predictor(self, op: InflightOp) -> None:
        meta = op.meta
        if meta.is_branch:
            self.predictor.repair(op.prediction, bool(op.believed_taken),
                                  is_conditional=True)
        elif meta.is_call:
            self.predictor.repair_call(op.prediction, meta.next_pc)
        else:
            self.predictor.repair(op.prediction, True, is_conditional=False)

    # -------------------------------------------------------------------- commit --

    def _commit(self) -> None:
        committed = 0
        rob = self.rob
        cycle = self.cycle
        width = self.config.commit_width
        while rob and committed < width:
            op = rob[0]
            if not op.completed or op.nonspec_cycle is None \
                    or op.nonspec_cycle >= cycle:
                break
            if op.is_control and not op.resolved_final:
                break
            rob.popleft()
            if op.is_mem:
                head = self.lsq.popleft()
                assert head is op, "LSQ out of sync with ROB"
            self._commit_one(op)
            committed += 1
            if op.meta.is_halt:
                self.halted = True
                self.stats.halted = True
                break

    def _commit_one(self, op: InflightOp) -> None:
        meta, outcome = op.meta, op.outcome
        stats = self.stats
        stats.committed += 1
        if op.exec_count > 0:
            stats.record_exec_histogram(op.exec_count)

        if op.checkpoint is not None:
            self.spec.release_checkpoint(op.checkpoint)
            op.checkpoint = None

        if meta.is_branch:
            stats.cond_branches += 1
            if op.prediction.taken == outcome.taken:
                stats.cond_branch_correct += 1
            stats.branch_resolution_cycles += (op.last_resolution_cycle
                                               - op.dispatch_cycle)
            stats.branch_resolution_count += 1
            self.predictor.commit_branch(meta.pc, bool(outcome.taken),
                                         op.prediction)
        elif meta.is_return:
            stats.returns += 1
            if op.prediction and op.prediction.target == outcome.next_pc:
                stats.returns_correct += 1
        elif meta.is_indirect:
            self.predictor.commit_indirect(meta.pc, outcome.next_pc)

        if op.is_mem:
            stats.memory_ops += 1
        if op.is_store and self.ir is not None:
            self.ir.on_store_commit(outcome.mem_addr, meta.mem_bytes)

        if self.vp is not None:
            self._train_vp(op)
        if op.reuse_hit_full:
            stats.ir_result_reused += 1
        if op.reuse_hit_addr:
            stats.ir_addr_reused += 1

        if self.oracle is not None:
            self._verify_commit(op)
        if self.on_commit is not None:
            self.on_commit(op, self.cycle)
        if self.telemetry is not None:
            tel = self.telemetry
            tel.emit("commit", self.cycle, op.seq, meta.pc, {
                "opcode": meta.opcode.name,
                "text": tel.disasm(meta),
                "dispatch": op.dispatch_cycle,
                "issue": op.issue_cycle,
                "complete": op.last_completion_cycle,
                "executions": op.exec_count,
                "reused": op.reused,
                "predicted": op.predicted,
                "correct": (op.predicted_value == outcome.result
                            if op.predicted else None),
            })

        # Break the producer<->consumer reference cycles: nothing walks a
        # committed op's consumer list again.  The backward `producers`
        # edges stay (tests and observers inspect them) — they point
        # strictly older, so once the forward edges are gone the committed
        # window is a DAG that plain refcounting reclaims in cascade,
        # letting run() pause the cyclic collector.
        op.consumers.clear()
        op.rename_snapshot = None
        op.forwarded_from = None

    def _train_vp(self, op: InflightOp) -> None:
        meta, outcome = op.meta, op.outcome
        stats = self.stats
        if self.config.vp.predict_results and meta.has_dest \
                and outcome.result is not None and not meta.is_store \
                and op.executes and not op.is_control:
            stats.vp_result_lookups += 1
            if op.predicted:
                stats.vp_result_predicted += 1
                if op.predicted_value == outcome.result:
                    stats.vp_result_correct += 1
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_verify", self.cycle, op.seq, meta.pc,
                        {"what": "result",
                         "correct": op.predicted_value == outcome.result,
                         "predicted": op.predicted_value,
                         "actual": outcome.result})
            self.vp.train_result(meta.pc, outcome.result,
                                 op.predicted_value if op.predicted else None)
        if meta.is_mem:
            stats.vp_addr_lookups += 1
            if op.addr_predicted:
                stats.vp_addr_predicted += 1
                if op.predicted_addr == outcome.mem_addr:
                    stats.vp_addr_correct += 1
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "vp_verify", self.cycle, op.seq, meta.pc,
                        {"what": "address",
                         "correct": op.predicted_addr == outcome.mem_addr,
                         "predicted": op.predicted_addr,
                         "actual": outcome.mem_addr})
            self.vp.train_address(meta.pc, outcome.mem_addr,
                                  op.predicted_addr if op.addr_predicted
                                  else None)

    def _verify_commit(self, op: InflightOp) -> None:
        expected = self.oracle.step()
        if expected.pc != op.meta.pc:
            raise SimulationError(
                f"commit diverged: oracle at {expected.pc:#x}, "
                f"core committed {op.meta.pc:#x} (cycle {self.cycle})")
        if expected.writes != op.outcome.writes:
            raise SimulationError(
                f"commit wrote {op.outcome.writes} but oracle wrote "
                f"{expected.writes} at {op.inst}")

    # --------------------------------------------------------------------- stats --

    def _finalize_stats(self) -> None:
        stats = self.stats
        stats.fetched = self.fetch_unit.fetched
        stats.icache_misses = self.fetch_unit.icache.misses
        stats.dcache_misses = self.dcache.misses
