"""Machine configuration for the out-of-order timing simulator.

Defaults reproduce Table 1 of the paper plus the VP/IR structure sizes from
Section 4.1.3 (16K-entry VPT, 4K-entry RB, both 4-way set associative, four
reads/writes per cycle).  The named constructors at the bottom build every
configuration the evaluation section simulates (base, IR early/late, the
four VP configurations x two predictors x two verification latencies).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class BranchPolicy(enum.Enum):
    """How branches with value-speculative operands are resolved (Sec 3.2/4.1.4).

    ``SPECULATIVE`` (SB): resolve as soon as the branch executes, even on
    value-speculative operands — may cause spurious squashes.
    ``NON_SPECULATIVE`` (NSB): defer resolution until all operands are
    non-value-speculative — delays misprediction detection.
    """

    SPECULATIVE = "SB"
    NON_SPECULATIVE = "NSB"


class ReexecPolicy(enum.Enum):
    """Re-execution policy after value misprediction (Sec 4.1.4).

    ``MULTIPLE`` (ME): re-execute every time an instruction sees new inputs.
    ``SINGLE`` (NME): re-execute once, after correct operands are known.
    """

    MULTIPLE = "ME"
    SINGLE = "NME"


class IRValidation(enum.Enum):
    """When reused results are validated (Figure 3 experiment).

    ``EARLY``: at decode — the real IR scheme (reused ops skip execution).
    ``LATE``: at execute — as if the reused ops were value predicted with
    perfect accuracy (they still execute to validate).
    """

    EARLY = "early"
    LATE = "late"


class PredictorKind(enum.Enum):
    MAGIC = "magic"  # VP_Magic: n unique values + oracle selection
    LAST_VALUE = "lvp"  # VP_LVP: single last value per instruction
    STRIDE = "stride"  # two-delta stride predictor (extension)
    FCM = "fcm"  # order-2 finite-context-method predictor (extension)
    HYBRID_SELECT = "select"  # confidence-gated stride/LVP/FCM selector
    PERFECT = "perfect"  # oracle: always correct (upper-bound studies)


@dataclass(frozen=True)
class CacheConfig:
    """One level-1 cache (Table 1: 64KB, 2-way, 32B lines, 6-cycle miss)."""

    size_bytes: int = 64 * 1024
    associativity: int = 2
    line_bytes: int = 32
    miss_latency: int = 6
    ports: int = 2  # D-cache is dual ported; the I-cache ignores this

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Gshare (McFarling) per Table 1: 10-bit history, 16K counters."""

    history_bits: int = 10
    counter_entries: int = 16 * 1024
    ras_entries: int = 16
    indirect_entries: int = 512  # last-target table for non-return jr/jalr


@dataclass(frozen=True)
class VPConfig:
    """Value-prediction configuration (Sections 4.1.1, 4.1.3, 4.1.4)."""

    enabled: bool = False
    kind: PredictorKind = PredictorKind.MAGIC
    entries: int = 16 * 1024
    associativity: int = 4  # max instances per instruction
    confidence_bits: int = 2
    confidence_threshold: int = 2  # counter value needed to predict
    verify_latency: int = 0  # 0 or 1 cycle (Sec 4.1.4)
    branch_policy: BranchPolicy = BranchPolicy.SPECULATIVE
    reexec_policy: ReexecPolicy = ReexecPolicy.MULTIPLE
    predict_results: bool = True
    predict_addresses: bool = True
    ports: int = 4  # reads/writes per cycle = predictions per cycle
    # Order of the finite-context-method predictor (PredictorKind.FCM
    # and the FCM component of HYBRID_SELECT): how many recent values
    # form the context hash.  Two is the classic Sazeides & Smith
    # design point; kept configurable for sensitivity studies.
    fcm_order: int = 2

    @property
    def max_confidence(self) -> int:
        return (1 << self.confidence_bits) - 1


@dataclass(frozen=True)
class IRConfig:
    """Instruction-reuse configuration (scheme S_{n+d}, Sec 4.1.2/4.1.3)."""

    enabled: bool = False
    entries: int = 4 * 1024
    associativity: int = 4  # max instances per instruction
    validation: IRValidation = IRValidation.EARLY
    # The "d" of S_{n+d}: dependence-pointer chaining, which lets an
    # entry be reused when its producer was reused this same cycle even
    # though the operand value is not yet readable.  Disabling it yields
    # the weaker S_n-style scheme of the original reuse paper.
    dependence_chaining: bool = True
    reuse_addresses: bool = True
    ports: int = 4  # reuses per cycle
    # Under LATE validation, may the reuse test chain through hit values
    # that have not been validated yet?  False (default) keeps the test
    # strictly non-speculative: deferring validation then also collapses
    # chained detection, which is what makes late validation lose most of
    # IR's benefit (Figure 3).  True treats detection as identical to the
    # early scheme and defers only the validation point.
    late_chain_detection: bool = False


@dataclass(frozen=True)
class MachineConfig:
    """Full processor configuration (Table 1 defaults)."""

    name: str = "base"
    fetch_width: int = 4
    decode_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    fetch_queue_size: int = 8
    rob_size: int = 32
    lsq_size: int = 32
    max_unresolved_branches: int = 8

    int_alus: int = 8
    load_store_units: int = 2
    int_mult_div_units: int = 1
    fp_adders: int = 4
    fp_mult_div_units: int = 1

    # Variable instruction fetch rate (arXiv 1707.04657): when enabled,
    # a low-confidence conditional-branch prediction ends the fetch
    # group, and the following cycle fetches at the reduced
    # ``vfr_low_conf_width`` — modelling a frontend that throttles
    # behind branches it does not trust instead of flooding the window
    # with likely-wrong-path work.  Timing-only: architectural results
    # are unchanged (the differential oracle covers this knob).
    variable_fetch_rate: bool = False
    vfr_low_conf_width: int = 2

    icache: CacheConfig = field(default_factory=lambda: CacheConfig(ports=1))
    dcache: CacheConfig = field(default_factory=CacheConfig)
    bpred: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    vp: VPConfig = field(default_factory=VPConfig)
    ir: IRConfig = field(default_factory=IRConfig)
    # Allow VP and IR together (the paper's suggested hybrid direction):
    # the reuse test runs first; instructions that miss in the RB but hit
    # a confident VPT instance are value predicted instead.
    hybrid: bool = False

    verify_commits: bool = False  # cross-check committed results vs oracle

    def with_name(self, name: str) -> "MachineConfig":
        return replace(self, name=name)


# ---------------------------------------------------------------------------
# Named configurations used by the paper's evaluation.
# ---------------------------------------------------------------------------


def base_config(**overrides) -> MachineConfig:
    """The base 4-way superscalar of Table 1 (no VP, no IR)."""
    return MachineConfig(**overrides)


def ir_config(validation: IRValidation = IRValidation.EARLY,
              **overrides) -> MachineConfig:
    """IR with scheme S_{n+d}: 4K-entry, 4-way RB."""
    name = "reuse-n+d" if validation == IRValidation.EARLY else "reuse-late"
    return MachineConfig(
        name=name,
        ir=IRConfig(enabled=True, validation=validation),
        **overrides,
    )


def vp_config(kind: PredictorKind = PredictorKind.MAGIC,
              reexec: ReexecPolicy = ReexecPolicy.MULTIPLE,
              branches: BranchPolicy = BranchPolicy.SPECULATIVE,
              verify_latency: int = 0,
              **overrides) -> MachineConfig:
    """A VP configuration: 16K-entry, 4-way VPT.

    The paper's four configurations are the cross product of
    ME/NME (re-execution) with SB/NSB (branch resolution), each run at
    0- and 1-cycle verification latency, for both VP_Magic and VP_LVP.
    """
    kind_name = kind.value
    name = (f"vp-{kind_name}-{reexec.value.lower()}"
            f"-{branches.value.lower()}-v{verify_latency}")
    vp = VPConfig(
        enabled=True,
        kind=kind,
        associativity=4 if kind == PredictorKind.MAGIC else 1,
        verify_latency=verify_latency,
        branch_policy=branches,
        reexec_policy=reexec,
    )
    return MachineConfig(name=name, vp=vp, **overrides)


def vfr_config(kind: Optional[PredictorKind] = None,
               low_conf_width: int = 2,
               **overrides) -> MachineConfig:
    """Variable-fetch-rate frontend, optionally on top of a VP scheme.

    With ``kind=None`` this is the base machine with the throttled
    frontend; with a predictor kind it is that kind's ME-SB-v0
    configuration plus the frontend knob, so the interaction between
    value speculation and a confidence-aware fetch can be studied.
    """
    if kind is None:
        base = MachineConfig(**overrides)
    else:
        base = vp_config(kind, **overrides)
    return replace(base, name=f"{base.name}-vfr",
                   variable_fetch_rate=True,
                   vfr_low_conf_width=low_conf_width)


def hybrid_config(kind: PredictorKind = PredictorKind.MAGIC,
                  verify_latency: int = 0,
                  branches: BranchPolicy = BranchPolicy.SPECULATIVE,
                  **overrides) -> MachineConfig:
    """The hybrid the paper's conclusion motivates: reuse what the RB
    validates non-speculatively, predict the rest.

    Both structures keep their Section 4.1.3 sizes, so the hybrid uses
    twice the storage of either technique alone — this configuration
    explores the mechanism interaction, not an equal-storage comparison
    (see the ablation experiments for storage sweeps).
    """
    kind_name = kind.value
    name = f"hybrid-{kind_name}-{branches.value.lower()}-v{verify_latency}"
    return MachineConfig(
        name=name,
        hybrid=True,
        vp=VPConfig(enabled=True, kind=kind,
                    associativity=4 if kind == PredictorKind.MAGIC else 1,
                    verify_latency=verify_latency, branch_policy=branches),
        ir=IRConfig(enabled=True),
        **overrides,
    )


def all_vp_configs(kind: Optional[PredictorKind] = None,
                   verify_latency: int = 0) -> "list[MachineConfig]":
    """The four ME/NME x SB/NSB configurations of Section 4.1.4.

    With ``kind=None``, enumerates the matrix for **every**
    :class:`PredictorKind` member — the predictor-zoo sweep.  Iterating
    the enum itself (not a hand-maintained list) is what guarantees a
    newly added kind cannot silently miss the sweeps; the coverage test
    in ``tests/uarch/test_config.py`` pins this.
    """
    kinds = list(PredictorKind) if kind is None else [kind]
    return [
        vp_config(one_kind, reexec, branches, verify_latency)
        for one_kind in kinds
        for reexec in (ReexecPolicy.MULTIPLE, ReexecPolicy.SINGLE)
        for branches in (BranchPolicy.SPECULATIVE,
                         BranchPolicy.NON_SPECULATIVE)
    ]
