"""Pre-decoded static instruction metadata for the timing core hot path.

Every dynamic instance of a static instruction used to re-derive the same
facts — opcode class, FU pool, latency, memory width, operand register
names, control-flow kind — through chains of ``op.inst.opcode.x``
attribute and property lookups, millions of times per simulation.  A
:class:`StaticOp` flattens all of it into one record built **once** per
static instruction and shared by every dynamic instance; the fetch unit,
dispatch, issue, the reuse test and the value-predictor lookup all read
the flat fields directly.

The table is built *lazily*, on first fetch of each PC:

* ``.space``-reserved text gaps never materialise instructions (the
  assembler leaves those PCs out of ``Program.instructions``), so they
  can never enter the table — a lookup at such a PC returns ``None``
  exactly like the program fetch it replaces;
* instructions that are never reached (dead code, the not-taken arm the
  program never visits) are never decoded at all.

``tests/isa/test_roundtrip.py`` audits both properties.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..functional.compiled import compile_exec
from ..isa.instruction import Instruction
from ..isa.opcodes import Format, OpClass, REG_FCC, REG_HI, REG_LO
from ..isa.program import Program

# Stable small-int index per FU class: StaticOp carries the index and
# FunctionalUnits exposes a parallel list, so the per-issue pool lookup
# is one list index instead of an enum-keyed dict probe.
OP_CLASS_INDEX: Dict[OpClass, int] = {
    cls: index for index, cls in enumerate(OpClass)
}
NUM_OP_CLASSES = len(OP_CLASS_INDEX)


class StaticOp:
    """Flat per-static-instruction metadata record (decode-once)."""

    __slots__ = (
        "inst", "opcode", "pc", "next_pc",
        "op_class", "op_class_index", "latency", "issue_interval",
        "eval_fn", "exec_fn",
        "rd", "rs", "rt", "imm", "target",
        "src_regs", "dest_regs", "has_dest",
        "is_branch", "is_jump", "is_indirect", "is_call", "is_return",
        "is_halt", "is_control", "is_nop",
        "is_load", "is_store", "is_mem", "mem_bytes", "mem_signed",
        "writes_hi_lo", "is_mult",
        "executes", "needs_checkpoint", "reuse_eligible",
        "pair_reg",
        "vp_result_key", "vp_addr_key",
    )

    def __init__(self, inst: Instruction):
        opcode = inst.opcode
        self.inst = inst
        self.opcode = opcode
        self.pc = inst.pc
        self.next_pc = inst.next_pc

        self.op_class = opcode.op_class
        self.op_class_index = OP_CLASS_INDEX[opcode.op_class]
        self.latency = opcode.latency
        self.issue_interval = opcode.issue_interval
        self.eval_fn = opcode.eval_fn
        # Compiled execution semantics: one specialized closure per static
        # instruction, applied to the speculative state at dispatch.
        self.exec_fn = compile_exec(inst)

        self.rd = inst.rd
        self.rs = inst.rs
        self.rt = inst.rt
        self.imm = inst.imm
        self.target = inst.target
        self.src_regs = inst.src_regs
        self.dest_regs = inst.dest_regs
        self.has_dest = bool(inst.dest_regs)

        self.is_branch = opcode.is_branch
        self.is_jump = opcode.is_jump
        self.is_indirect = opcode.is_indirect
        self.is_call = opcode.is_call
        self.is_return = inst.is_return
        self.is_halt = opcode.is_halt
        self.is_control = opcode.is_control
        self.is_nop = opcode.op_class is OpClass.NOP

        self.is_load = opcode.is_load
        self.is_store = opcode.is_store
        self.is_mem = opcode.is_load or opcode.is_store
        self.mem_bytes = opcode.mem_bytes
        self.mem_signed = opcode.mem_signed

        self.writes_hi_lo = opcode.writes_hi_lo
        self.is_mult = opcode.name == "mult"

        # Direct jumps (j/jal) and nops never execute (outcome known at
        # fetch); indirect jumps execute for their target.
        self.executes = (opcode.is_indirect
                         or (not self.is_nop and not opcode.is_jump))
        self.needs_checkpoint = opcode.is_branch or opcode.is_indirect
        # Reuse eligibility (ReuseEngine): direct jumps, nops and halt
        # gain nothing from reuse.
        self.reuse_eligible = not (
            self.is_nop or (opcode.is_jump and not opcode.is_indirect))

        # Fixed special-register operand for the core's re-evaluation
        # path (mfhi/mflo read HI/LO, fcc-branches read FCC); negative
        # means "general rs/rt operands".
        if opcode.name == "mfhi":
            self.pair_reg = REG_HI
        elif opcode.name == "mflo":
            self.pair_reg = REG_LO
        elif opcode.fmt is Format.BRANCH0:
            self.pair_reg = REG_FCC
        else:
            self.pair_reg = -1

        # Shared key layout of the VPT and stride tables: (pc>>2)<<1|kind.
        self.vp_result_key = (inst.pc >> 2) << 1
        self.vp_addr_key = self.vp_result_key | 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<static {self.opcode.name}@{self.pc:#x}>"


class DecodeTable:
    """Lazy PC -> :class:`StaticOp` map over one program.

    Only PCs that are actually fetched are ever decoded: unreachable
    instructions never enter the table, and invalid PCs (``.space``
    gaps, addresses off the program) return ``None`` without being
    recorded.
    """

    def __init__(self, program: Program):
        self.program = program
        self.table: Dict[int, StaticOp] = {}

    def lookup(self, pc: int) -> Optional[StaticOp]:
        entry = self.table.get(pc)
        if entry is None:
            inst = self.program.fetch(pc)
            if inst is None:
                return None
            entry = StaticOp(inst)
            self.table[pc] = entry
        return entry

    def decoded_pcs(self) -> List[int]:
        """PCs decoded so far (the audit surface for the table tests)."""
        return sorted(self.table)

    def __len__(self) -> int:
        return len(self.table)
