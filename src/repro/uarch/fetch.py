"""Instruction fetch: 4/cycle, one taken branch, no line crossing (Table 1).

The fetch unit consumes pre-decoded :class:`StaticOp` records from the
core's shared :class:`DecodeTable` — each static instruction is decoded
once on its first fetch, and every later fetch of the same PC reuses the
flat metadata record.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .branch_predictor import BranchPrediction, BranchPredictorUnit
from .cache import SetAssocCache
from .config import MachineConfig
from .decode import DecodeTable, StaticOp

#: One fetch-queue element: (StaticOp, fetch-time prediction or None,
#: fetch cycle).  A plain tuple — the fetch/dispatch hot path allocates
#: nothing beyond it per instruction.
FetchedInst = Tuple[StaticOp, Optional[BranchPrediction], int]


class FetchUnit:
    """Front end: I-cache + branch prediction + fetch queue."""

    def __init__(self, config: MachineConfig, program,
                 predictor: BranchPredictorUnit):
        self.config = config
        # Accept a pre-built DecodeTable (the core shares one) or a bare
        # Program (standalone fetch tests).
        self.decode = (program if isinstance(program, DecodeTable)
                       else DecodeTable(program))
        self.program = self.decode.program
        self.predictor = predictor
        self.icache = SetAssocCache(config.icache, "icache")
        self.queue: Deque[FetchedInst] = deque()
        self.fetch_pc = self.program.entry_point
        self.stall_until = 0  # I-cache miss in progress
        self.blocked = False  # unknown next PC (unpredicted indirect/halt)
        self.fetched = 0
        # Stepped cycles in which fetch could not proceed at all (blocked
        # on a redirect or inside an I-cache miss).  Telemetry-only: not
        # part of SimStats, so golden byte-identity is untouched.
        self.stall_cycles = 0
        # Variable fetch rate (config.variable_fetch_rate): a fetched
        # conditional branch with a weak direction counter ends the
        # group, and the next cycle runs at the reduced width.  Both
        # counters are telemetry-only (not SimStats).
        self.vfr_throttles = 0
        self._vfr_slow_cycle = -1

    def redirect(self, target: int, cycle: int) -> None:
        """Squash recovery: restart fetch at *target* next cycle."""
        self.queue.clear()
        self.fetch_pc = target
        self.blocked = False
        self.stall_until = max(self.stall_until, cycle + 1)
        self._vfr_slow_cycle = -1  # the throttling branch is gone

    def room(self) -> int:
        return self.config.fetch_queue_size - len(self.queue)

    def step(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` instructions; returns how many."""
        if self.blocked or cycle < self.stall_until:
            self.stall_cycles += 1
            return 0
        fetched = 0
        line_shift = self.icache.line_shift
        current_line = None
        table = self.decode.table
        lookup = self.decode.lookup
        queue = self.queue
        room = self.config.fetch_queue_size - len(queue)
        width = self.config.fetch_width
        if self._vfr_slow_cycle == cycle:
            width = min(width, self.config.vfr_low_conf_width)
        throttle = self.config.variable_fetch_rate
        while fetched < width and room > 0:
            pc = self.fetch_pc
            op = table.get(pc)
            if op is None:
                op = lookup(pc)
            if op is None:
                # Fell off the program (wrong path): wait for a redirect.
                self.blocked = True
                break
            line = pc >> line_shift
            if current_line is None:
                if not self.icache.access(pc):
                    self.stall_until = cycle + self.config.icache.miss_latency
                    break
                current_line = line
            elif line != current_line:
                break  # cannot fetch across a cache line boundary

            if op.is_branch or op.is_jump:
                prediction, next_pc, stop = self._predict(op)
            else:  # straight-line fast path: no predictor involvement
                prediction, next_pc, stop = None, op.next_pc, False
            queue.append((op, prediction, cycle))
            fetched += 1
            room -= 1
            self.fetched += 1
            if op.is_halt:
                self.blocked = True
                break
            if next_pc is None:
                self.blocked = True  # unpredicted indirect target
                break
            self.fetch_pc = next_pc
            if throttle and prediction is not None and op.is_branch \
                    and prediction.low_confidence:
                # Variable fetch rate: do not race ahead of a branch the
                # predictor is unsure about — end this group and fetch
                # the next cycle at the reduced width.
                self.vfr_throttles += 1
                self._vfr_slow_cycle = cycle + 1
                break
            if stop:
                break  # only one taken branch per cycle
        return fetched

    def _predict(self, op: StaticOp):
        """Predict control flow; returns (prediction, next_pc, stop_group)."""
        if op.is_branch:
            prediction = self.predictor.predict_branch(op.pc, op.target)
            if prediction.taken:
                return prediction, op.target, True
            return prediction, op.next_pc, False
        if op.is_jump:
            if op.is_call:
                target = None if op.is_indirect else op.target
                prediction = self.predictor.predict_call(
                    op.pc, op.next_pc, target)
            elif op.is_return:
                prediction = self.predictor.predict_return(op.pc)
            elif op.is_indirect:
                prediction = self.predictor.predict_indirect(op.pc)
            else:  # direct j: target always known (ideal BTB)
                prediction = BranchPrediction(
                    True, op.target, self.predictor.gshare.history,
                    self.predictor.ras.snapshot())
            return prediction, prediction.target, True
        return None, op.next_pc, False

    def pop(self) -> FetchedInst:
        return self.queue.popleft()

    def peek(self) -> Optional[FetchedInst]:
        return self.queue[0] if self.queue else None

    def __len__(self) -> int:
        return len(self.queue)
