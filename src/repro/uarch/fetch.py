"""Instruction fetch: 4/cycle, one taken branch, no line crossing (Table 1)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..isa.instruction import INSTRUCTION_BYTES, Instruction
from ..isa.program import Program
from .branch_predictor import BranchPrediction, BranchPredictorUnit
from .cache import SetAssocCache
from .config import MachineConfig


@dataclass
class FetchedInst:
    """One instruction in the fetch queue, with its fetch-time prediction."""

    inst: Instruction
    prediction: Optional[BranchPrediction]  # set for predicted control
    fetch_cycle: int


class FetchUnit:
    """Front end: I-cache + branch prediction + fetch queue."""

    def __init__(self, config: MachineConfig, program: Program,
                 predictor: BranchPredictorUnit):
        self.config = config
        self.program = program
        self.predictor = predictor
        self.icache = SetAssocCache(config.icache, "icache")
        self.queue: Deque[FetchedInst] = deque()
        self.fetch_pc = program.entry_point
        self.stall_until = 0  # I-cache miss in progress
        self.blocked = False  # unknown next PC (unpredicted indirect/halt)
        self.fetched = 0

    def redirect(self, target: int, cycle: int) -> None:
        """Squash recovery: restart fetch at *target* next cycle."""
        self.queue.clear()
        self.fetch_pc = target
        self.blocked = False
        self.stall_until = max(self.stall_until, cycle + 1)

    def room(self) -> int:
        return self.config.fetch_queue_size - len(self.queue)

    def step(self, cycle: int) -> int:
        """Fetch up to ``fetch_width`` instructions; returns how many."""
        if self.blocked or cycle < self.stall_until:
            return 0
        fetched = 0
        line_shift = self.icache.line_shift
        current_line = None
        while fetched < self.config.fetch_width and self.room() > 0:
            pc = self.fetch_pc
            inst = self.program.fetch(pc)
            if inst is None:
                # Fell off the program (wrong path): wait for a redirect.
                self.blocked = True
                break
            line = pc >> line_shift
            if current_line is None:
                if not self.icache.access(pc):
                    self.stall_until = cycle + self.config.icache.miss_latency
                    break
                current_line = line
            elif line != current_line:
                break  # cannot fetch across a cache line boundary

            prediction, next_pc, stop = self._predict(inst)
            self.queue.append(FetchedInst(inst, prediction, cycle))
            fetched += 1
            self.fetched += 1
            if inst.opcode.is_halt:
                self.blocked = True
                break
            if next_pc is None:
                self.blocked = True  # unpredicted indirect target
                break
            self.fetch_pc = next_pc
            if stop:
                break  # only one taken branch per cycle
        return fetched

    def _predict(self, inst: Instruction):
        """Predict control flow; returns (prediction, next_pc, stop_group)."""
        op = inst.opcode
        if op.is_branch:
            prediction = self.predictor.predict_branch(inst.pc, inst.target)
            if prediction.taken:
                return prediction, inst.target, True
            return prediction, inst.next_pc, False
        if op.is_jump:
            if op.is_call:
                target = None if op.is_indirect else inst.target
                prediction = self.predictor.predict_call(
                    inst.pc, inst.next_pc, target)
            elif inst.is_return:
                prediction = self.predictor.predict_return(inst.pc)
            elif op.is_indirect:
                prediction = self.predictor.predict_indirect(inst.pc)
            else:  # direct j: target always known (ideal BTB)
                prediction = BranchPrediction(
                    True, inst.target, self.predictor.gshare.history,
                    self.predictor.ras.snapshot())
            return prediction, prediction.target, True
        return None, inst.next_pc, False

    def pop(self) -> FetchedInst:
        return self.queue.popleft()

    def peek(self) -> Optional[FetchedInst]:
        return self.queue[0] if self.queue else None

    def __len__(self) -> int:
        return len(self.queue)
