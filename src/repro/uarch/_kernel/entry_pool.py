"""Structure-of-arrays storage for in-flight (ROB-resident) instructions.

Kernel module: this is the canonical :class:`EntryPool` implementation,
written mypyc-clean (annotation-complete, no dynamic attribute access —
``_grow`` spells out every field instead of walking a name table; the
``_SCALAR_DEFAULTS`` spec table lives in the ``repro.uarch.entry``
façade and a dual-backend test cross-checks it against fresh slots).
Import it through :func:`repro.backend.get_backend`.

Timing semantics used throughout the core:

* a value with ``ready_cycle == r`` can be consumed by an execution issuing
  at cycle ``r + 1`` or later;
* a value-predicted or reused result is available at the dispatch cycle;
* ``nonspec_cycle`` is the cycle at which the value became non-value-
  speculative (verified); for non-VP configurations this equals the
  completion cycle.  Commit requires it.

Dynamic instruction state lives in an :class:`EntryPool`: one preallocated
parallel array per field, indexed by a small integer entry id, with a
free-list allocator.  Dispatch takes an id off the free list and writes
the handful of fields the instruction starts with; squash and commit
*reset the slot* back onto the free list instead of dropping an object —
the steady state allocates nothing per instruction.

Lifetime rules (see ``docs/internals.md``):

* A slot is pinned by its consumers: each live consumer's ``producers``
  edge counts one reference.  Commit marks the slot *retired*; the slot
  is recycled when it is retired and its reference count reaches zero
  (consumers drop their edges when they commit or squash).  Producers
  are strictly older, so pinned-retired slots never chain: a retired
  slot's own producer edges were already dropped at its commit.
* Stale ids can survive in the rename map, the event heap, the wakeup
  queue and ``forwarded_from``; those stores carry a *token*
  ``(seq << SEQ_SHIFT) | id`` and every read validates
  ``seq_of[id] == token >> SEQ_SHIFT`` — a freed slot has ``seq_of -1``
  and a recycled one a strictly newer ``seq``, so stale tokens can never
  alias a live instruction.
* Consumer edges pack ``(token << REG_SHIFT) | reg`` into one int, so
  the producer-side consumer lists hold no tuples at all.

The :class:`CommittedOp` view reconstructs the old per-object interface
(``value_for_reg``, ``producers``, ``src_values``...) for commit-time
observers (``core.on_commit``); it is built only when a hook is attached,
so the golden hot path never pays for it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ...isa.opcodes import REG_HI

# Token layout: (seq << SEQ_SHIFT) | entry_id.  SEQ_SHIFT bounds the pool
# capacity (2**SEQ_SHIFT slots), not the instruction count — Python ints
# are unbounded, so seq can grow past any budget without overflow.
SEQ_SHIFT: int = 20
IDX_MASK: int = (1 << SEQ_SHIFT) - 1
# Consumer-edge layout: (token << REG_SHIFT) | reg  (NUM_REGS == 67 < 128).
REG_SHIFT: int = 7
REG_MASK: int = (1 << REG_SHIFT) - 1


class EntryPool:
    """Preallocated parallel-array storage for dynamic instructions."""

    def __init__(self, capacity: int) -> None:
        self.capacity: int = 0
        self.live: int = 0  # allocated (ROB-resident) slots
        self.pinned: int = 0  # retired slots kept alive by consumer edges
        self.free_list: List[int] = []
        # Reset-group gates: a machine with value prediction or reuse
        # disabled never writes those field groups, so :meth:`free` can
        # skip resetting them.  Conservative (all on) by default; the
        # core lowers them to match its configuration.
        self.reset_vp: bool = True  # predicted / predicted_value / addr_*
        self.reset_ir: bool = True  # reused / reuse_value / rb_entry / hits
        self.reset_reexec: bool = True  # stale / reexec_earliest

        # Identity / static metadata (copied from the shared StaticOp).
        self.seq_of: List[int] = []
        self.meta: List[Any] = []
        self.outcome: List[Any] = []
        self.dispatch_cycle: List[int] = []
        self.is_load: List[bool] = []
        self.is_store: List[bool] = []
        self.is_mem: List[bool] = []
        self.is_control: List[bool] = []
        self.writes_hi_lo: List[bool] = []

        # Register dataflow, fixed at rename time.
        self.producers: List[Dict[int, int]] = []  # src reg -> entry id
        self.src_values: List[Dict[int, int]] = []  # dispatch-time values
        self.consumers: List[List[int]] = []  # packed (tok<<7)|reg edges
        self.refs: List[int] = []  # consumer edges pointing at me
        self.retired: List[bool] = []  # committed; recycle when refs == 0

        # Timing state.
        self.completed: List[bool] = []
        self.ready_cycle: List[Optional[int]] = []
        self.value_ready_cycle: List[Optional[int]] = []
        self.hi_ready_cycle: List[Optional[int]] = []
        self.nonspec_cycle: List[Optional[int]] = []
        self.current_value: List[Optional[int]] = []
        self.current_hi: List[Optional[int]] = []

        # Execution machinery.
        self.exec_count: List[int] = []
        self.issued: List[bool] = []
        self.completes_at: List[Optional[int]] = []
        self.issue_read_values: List[Optional[Dict[int, int]]] = []
        self.used_values: List[Dict[int, int]] = []
        # Two slot-resident scratch dicts: issue fills whichever buffer
        # ``used_values`` does not currently alias, so an in-flight
        # execution's operand snapshot never clobbers the completed one.
        self.buf_a: List[Dict[int, int]] = []
        self.buf_b: List[Dict[int, int]] = []
        self.used_addr: List[Optional[int]] = []
        self.stale: List[bool] = []
        self.reexec_earliest: List[Optional[int]] = []
        self.in_issue_queue: List[bool] = []

        # Value prediction.
        self.predicted: List[bool] = []
        self.predicted_value: List[Optional[int]] = []
        self.addr_predicted: List[bool] = []
        self.predicted_addr: List[Optional[int]] = []

        # Instruction reuse.
        self.reused: List[bool] = []
        self.addr_reused: List[bool] = []
        self.reuse_value: List[Optional[int]] = []
        self.rb_entry: List[Any] = []

        # Control.
        self.prediction: List[Any] = []
        self.believed_taken: List[Optional[bool]] = []
        self.believed_target: List[Optional[int]] = []
        self.resolved_final: List[bool] = []
        self.last_resolution_cycle: List[Optional[int]] = []
        self.checkpoint: List[Any] = []
        self.rename_snapshot: List[Any] = []

        # Memory.
        self.current_addr: List[Optional[int]] = []
        self.addr_known_cycle: List[Optional[int]] = []
        self.forwarded_from: List[Optional[int]] = []  # token, not id

        self.issue_cycle: List[Optional[int]] = []
        self.issue_addr: List[Optional[int]] = []
        self.last_completion_cycle: List[Optional[int]] = []
        self.reuse_hit_full: List[bool] = []
        self.reuse_hit_addr: List[bool] = []

        self._grow(capacity)

    # -- allocator -------------------------------------------------------------------

    def _grow(self, extra: int) -> None:
        """Append *extra* pristine slots to every field array.

        Spelled out field by field (no name-table walk): the façade's
        ``_SCALAR_DEFAULTS`` table documents the same (field, default)
        pairs and the dual-backend tests assert a fresh slot matches it,
        so the two can never drift apart silently.
        """
        start = self.capacity
        self.capacity += extra
        if self.capacity > IDX_MASK:
            raise OverflowError("entry pool exceeded the token id space")

        self.seq_of.extend([-1] * extra)
        self.meta.extend([None] * extra)
        self.outcome.extend([None] * extra)
        self.dispatch_cycle.extend([0] * extra)
        self.is_load.extend([False] * extra)
        self.is_store.extend([False] * extra)
        self.is_mem.extend([False] * extra)
        self.is_control.extend([False] * extra)
        self.writes_hi_lo.extend([False] * extra)

        self.refs.extend([0] * extra)
        self.retired.extend([False] * extra)

        self.completed.extend([False] * extra)
        self.ready_cycle.extend([None] * extra)
        self.value_ready_cycle.extend([None] * extra)
        self.hi_ready_cycle.extend([None] * extra)
        self.nonspec_cycle.extend([None] * extra)
        self.current_value.extend([None] * extra)
        self.current_hi.extend([None] * extra)

        self.exec_count.extend([0] * extra)
        self.issued.extend([False] * extra)
        self.completes_at.extend([None] * extra)
        self.issue_read_values.extend([None] * extra)
        self.used_addr.extend([None] * extra)
        self.stale.extend([False] * extra)
        self.reexec_earliest.extend([None] * extra)
        self.in_issue_queue.extend([False] * extra)

        self.predicted.extend([False] * extra)
        self.predicted_value.extend([None] * extra)
        self.addr_predicted.extend([False] * extra)
        self.predicted_addr.extend([None] * extra)

        self.reused.extend([False] * extra)
        self.addr_reused.extend([False] * extra)
        self.reuse_value.extend([None] * extra)
        self.rb_entry.extend([None] * extra)

        self.prediction.extend([None] * extra)
        self.believed_taken.extend([None] * extra)
        self.believed_target.extend([None] * extra)
        self.resolved_final.extend([False] * extra)
        self.last_resolution_cycle.extend([None] * extra)
        self.checkpoint.extend([None] * extra)
        self.rename_snapshot.extend([None] * extra)

        self.current_addr.extend([None] * extra)
        self.addr_known_cycle.extend([None] * extra)
        self.forwarded_from.extend([None] * extra)

        self.issue_cycle.extend([None] * extra)
        self.issue_addr.extend([None] * extra)
        self.last_completion_cycle.extend([None] * extra)
        self.reuse_hit_full.extend([False] * extra)
        self.reuse_hit_addr.extend([False] * extra)

        for _ in range(extra):
            self.producers.append({})
            self.src_values.append({})
            self.consumers.append([])
            self.buf_a.append({})
            self.buf_b.append({})
            self.used_values.append(self.buf_a[-1])
        # LIFO free list: hand out low, recently-touched ids first.
        self.free_list.extend(range(self.capacity - 1, start - 1, -1))

    def alloc(self, seq: int, meta: Any, outcome: Any, cycle: int) -> int:
        """Take a slot for a newly dispatched instruction.

        Every dynamic field was reset by :meth:`free` (or by
        construction), so only the identity fields are written here.
        """
        free_list = self.free_list
        if not free_list:
            self._grow(self.capacity)
        i = free_list.pop()
        self.seq_of[i] = seq
        self.meta[i] = meta
        self.outcome[i] = outcome
        self.dispatch_cycle[i] = cycle
        self.is_load[i] = meta.is_load
        self.is_store[i] = meta.is_store
        self.is_mem[i] = meta.is_mem
        self.is_control[i] = meta.is_control
        self.writes_hi_lo[i] = meta.writes_hi_lo
        self.live += 1
        return i

    def free(self, i: int) -> None:
        """Reset slot *i* to its pristine dynamic state and recycle it.

        The reset *is* the squash/commit cleanup: every field the slot's
        lifetime could have written returns to the state a
        never-allocated slot has (the entry-pool property tests pin
        this).  Two refinements keep it off the wallclock floor:

        * identity fields (``meta``, ``outcome``, ``dispatch_cycle`` and
          the ``is_*`` flag copies) are written unconditionally by
          :meth:`alloc`, so only ``seq_of`` — the token validity word —
          needs resetting here;
        * field groups only ever written for memory ops, control ops, or
          under a disabled machine feature (the ``reset_*`` gates) are
          skipped when the slot cannot have touched them.
        """
        if self.retired[i]:
            self.retired[i] = False
            self.pinned -= 1
        else:
            self.live -= 1
        self.seq_of[i] = -1

        self.producers[i].clear()
        self.src_values[i].clear()
        self.consumers[i].clear()

        self.completed[i] = False
        self.ready_cycle[i] = None
        self.value_ready_cycle[i] = None
        self.hi_ready_cycle[i] = None
        self.nonspec_cycle[i] = None
        self.current_value[i] = None
        self.current_hi[i] = None

        self.exec_count[i] = 0
        self.issued[i] = False
        self.completes_at[i] = None
        self.issue_read_values[i] = None
        self.buf_a[i].clear()
        self.buf_b[i].clear()
        self.used_values[i] = self.buf_a[i]
        self.in_issue_queue[i] = False
        self.issue_cycle[i] = None
        self.last_completion_cycle[i] = None

        if self.is_mem[i]:
            self.used_addr[i] = None
            self.current_addr[i] = None
            self.addr_known_cycle[i] = None
            self.forwarded_from[i] = None
            self.issue_addr[i] = None
        elif self.is_control[i]:
            self.current_addr[i] = None  # indirect-jump resolved target
        if self.is_control[i]:
            self.prediction[i] = None
            self.believed_taken[i] = None
            self.believed_target[i] = None
            self.resolved_final[i] = False
            self.last_resolution_cycle[i] = None
            self.checkpoint[i] = None
            self.rename_snapshot[i] = None

        if self.reset_vp:
            self.predicted[i] = False
            self.predicted_value[i] = None
            self.addr_predicted[i] = False
            self.predicted_addr[i] = None
        if self.reset_ir:
            self.reused[i] = False
            self.addr_reused[i] = False
            self.reuse_value[i] = None
            self.rb_entry[i] = None
            self.reuse_hit_full[i] = False
            self.reuse_hit_addr[i] = False
        if self.reset_reexec:
            self.stale[i] = False
            self.reexec_earliest[i] = None

        self.free_list.append(i)

    def retire(self, i: int) -> None:
        """Commit slot *i*: recycle now, or pin until consumers drop it."""
        if self.refs[i] == 0:
            self.free(i)
        else:
            self.live -= 1
            self.retired[i] = True
            self.pinned += 1

    def drop_edges(self, i: int) -> None:
        """Release slot *i*'s producer edges (it committed or squashed).

        Producers are strictly older; a retired one whose last reference
        this was is recycled immediately.  No cascade is possible: a
        retired producer's own edges were dropped at its commit.
        """
        producers = self.producers[i]
        refs = self.refs
        retired = self.retired
        for p in producers.values():
            left = refs[p] - 1
            refs[p] = left
            if left == 0 and retired[p]:
                self.free(p)
        producers.clear()

    def token(self, i: int) -> int:
        return (self.seq_of[i] << SEQ_SHIFT) | i

    def valid(self, token: int) -> bool:
        return self.seq_of[token & IDX_MASK] == token >> SEQ_SHIFT

    # -- dataflow helpers (cold paths: the core inlines these) -------------------------

    def reg_ready_cycle(self, i: int, reg: int) -> Optional[int]:
        """When slot *i*'s dest *reg* became available to consumers."""
        if reg == REG_HI and self.writes_hi_lo[i]:
            return self.hi_ready_cycle[i]
        return self.value_ready_cycle[i]

    def value_for_reg(self, i: int, reg: int) -> Optional[int]:
        """Current broadcast value of slot *i*'s dest *reg*."""
        if reg == REG_HI and self.writes_hi_lo[i]:
            return self.current_hi[i]
        return self.current_value[i]

    def final_value_for_reg(self, i: int, reg: int) -> Optional[int]:
        """Value of *reg* once slot *i* is non-speculative."""
        outcome = self.outcome[i]
        if reg == REG_HI and self.writes_hi_lo[i]:
            return outcome.result_hi  # type: ignore[no-any-return]
        return outcome.result  # type: ignore[no-any-return]

    def operands_ready(self, i: int, issue_cycle: int) -> bool:
        """Can an execution issuing at *issue_cycle* read all inputs?"""
        for reg, p in self.producers[i].items():
            ready = self.reg_ready_cycle(p, reg)
            if ready is None or ready >= issue_cycle:
                return False
        return True

    def view(self, i: int) -> "CommittedOp":
        """Snapshot slot *i* as a :class:`CommittedOp` (observer hook)."""
        return CommittedOp(self, i)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EntryPool cap={self.capacity} live={self.live} "
                f"pinned={self.pinned}>")


class CommittedOp:
    """Immutable per-object view of a committed instruction.

    Built at commit (only when ``core.on_commit`` is attached) from the
    pool arrays, *before* the slot's edges are dropped, so tracing,
    breakdowns and tests keep the familiar attribute interface.  The
    ``producers`` map holds views of the producers still linked at
    commit; their own producer edges were dropped when *they* committed,
    so a producer view's ``producers`` is empty.

    (No ``__slots__``: a mypyc-native class already has a fixed layout,
    and the declaration itself is a construct mypyc rejects.)
    """

    seq: int
    meta: Any
    inst: Any
    outcome: Any
    dispatch_cycle: int
    producers: Dict[int, "CommittedOp"]
    src_values: Dict[int, int]
    used_values: Dict[int, int]
    completed: bool
    ready_cycle: Optional[int]
    value_ready_cycle: Optional[int]
    hi_ready_cycle: Optional[int]
    nonspec_cycle: Optional[int]
    current_value: Optional[int]
    current_hi: Optional[int]
    exec_count: int
    issued: bool
    used_addr: Optional[int]
    predicted: bool
    predicted_value: Optional[int]
    addr_predicted: bool
    predicted_addr: Optional[int]
    reused: bool
    addr_reused: bool
    reuse_value: Optional[int]
    prediction: Any
    believed_taken: Optional[bool]
    believed_target: Optional[int]
    resolved_final: bool
    last_resolution_cycle: Optional[int]
    current_addr: Optional[int]
    addr_known_cycle: Optional[int]
    issue_cycle: Optional[int]
    issue_addr: Optional[int]
    last_completion_cycle: Optional[int]
    reuse_hit_full: bool
    reuse_hit_addr: bool
    squashed: bool
    is_load: bool
    is_store: bool
    is_mem: bool
    is_control: bool
    is_cond_branch: bool
    needs_checkpoint: bool
    executes: bool

    def __init__(self, pool: EntryPool, i: int) -> None:
        meta = pool.meta[i]
        self.seq = pool.seq_of[i]
        self.meta = meta
        self.inst = meta.inst
        self.outcome = pool.outcome[i]
        self.dispatch_cycle = pool.dispatch_cycle[i]
        self.producers = {reg: CommittedOp(pool, p)
                          for reg, p in pool.producers[i].items()}
        self.src_values = dict(pool.src_values[i])
        self.used_values = dict(pool.used_values[i])
        self.completed = pool.completed[i]
        self.ready_cycle = pool.ready_cycle[i]
        self.value_ready_cycle = pool.value_ready_cycle[i]
        self.hi_ready_cycle = pool.hi_ready_cycle[i]
        self.nonspec_cycle = pool.nonspec_cycle[i]
        self.current_value = pool.current_value[i]
        self.current_hi = pool.current_hi[i]
        self.exec_count = pool.exec_count[i]
        self.issued = pool.issued[i]
        self.used_addr = pool.used_addr[i]
        self.predicted = pool.predicted[i]
        self.predicted_value = pool.predicted_value[i]
        self.addr_predicted = pool.addr_predicted[i]
        self.predicted_addr = pool.predicted_addr[i]
        self.reused = pool.reused[i]
        self.addr_reused = pool.addr_reused[i]
        self.reuse_value = pool.reuse_value[i]
        self.prediction = pool.prediction[i]
        self.believed_taken = pool.believed_taken[i]
        self.believed_target = pool.believed_target[i]
        self.resolved_final = pool.resolved_final[i]
        self.last_resolution_cycle = pool.last_resolution_cycle[i]
        self.current_addr = pool.current_addr[i]
        self.addr_known_cycle = pool.addr_known_cycle[i]
        self.issue_cycle = pool.issue_cycle[i]
        self.issue_addr = pool.issue_addr[i]
        self.last_completion_cycle = pool.last_completion_cycle[i]
        self.reuse_hit_full = pool.reuse_hit_full[i]
        self.reuse_hit_addr = pool.reuse_hit_addr[i]
        self.squashed = False
        self.is_load = meta.is_load
        self.is_store = meta.is_store
        self.is_mem = meta.is_mem
        self.is_control = meta.is_control
        self.is_cond_branch = meta.is_branch
        self.needs_checkpoint = meta.needs_checkpoint
        self.executes = meta.executes

    # -- dataflow helpers (same contracts as the old per-entry object) ------------------

    def value_for_reg(self, reg: int) -> Optional[int]:
        """Current broadcast value of my dest *reg* (HI vs LO aware)."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.current_hi
        return self.current_value

    def reg_ready_cycle(self, reg: int) -> Optional[int]:
        """When my dest *reg* became available to consumers."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.hi_ready_cycle
        return self.value_ready_cycle

    def final_value_for_reg(self, reg: int) -> Optional[int]:
        """Value of *reg* once I am non-speculative (oracle on my path)."""
        if reg == REG_HI and self.meta.writes_hi_lo:
            return self.outcome.result_hi  # type: ignore[no-any-return]
        return self.outcome.result  # type: ignore[no-any-return]

    def inputs_match_oracle(self, values: Dict[int, int]) -> bool:
        src_values = self.src_values
        return all(values[reg] == src_values[reg] for reg in values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<op#{self.seq} {self.inst.opcode.name}@{self.inst.pc:#x}>"
