"""Completion-event heap and wakeup (issue) queue of the timing core.

Kernel module (mypyc-clean; import through
:func:`repro.backend.get_backend`).  Both structures keep their backing
list as a *public attribute* on purpose: the interpreted core binds
``eventq.heap`` / ``wakeq.tokens`` once and walks them with local-
variable speed in its per-cycle loop, while mutations that must uphold
an invariant (heap order, sortedness bookkeeping) go through the
methods.  Neither attribute is ever rebound by the kernel — only
mutated in place — so a borrowed reference stays valid for the life of
the queue.  (:meth:`WakeupQueue.replace` rebinds by contract; callers
re-borrow after it.)
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List, Tuple

#: Event kinds carried in the heap tuples.
EVENT_COMPLETE: int = 0
EVENT_RESOLVE: int = 1

#: "No pending activity" bound: past any reachable cycle count but well
#: inside the range where CPython ints are still fast.
FAR_FUTURE: int = 1 << 62


class EventQueue:
    """Min-heap of ``(cycle, seq, kind, entry_id)`` completion events.

    Ordering by ``(cycle, seq)`` makes same-cycle delivery age-ordered,
    which the golden corpus pins; *kind* and *entry_id* never decide the
    order because ``seq`` is unique per dynamic instruction.
    """

    heap: List[Tuple[int, int, int, int]]

    def __init__(self) -> None:
        self.heap = []

    def push(self, cycle: int, seq: int, kind: int, idx: int) -> None:
        heappush(self.heap, (cycle, seq, kind, idx))

    def pop(self) -> Tuple[int, int, int, int]:
        return heappop(self.heap)

    def next_cycle(self) -> int:
        """Cycle of the earliest pending event (FAR_FUTURE when empty)."""
        heap = self.heap
        return heap[0][0] if heap else FAR_FUTURE

    def __len__(self) -> int:
        return len(self.heap)


class WakeupQueue:
    """The issue/wakeup queue: tokens of ops that may want to issue.

    Tokens are ``(seq << SEQ_SHIFT) | id``, so plain integer order *is*
    age order.  Appends are usually already in age order; :meth:`add`
    notes the exception (re-adding an older op after a re-execution
    wake) in ``dirty`` and :meth:`ensure_sorted` restores order with one
    sort at the top of the issue phase — amortised, never per-append.
    """

    tokens: List[int]
    dirty: bool

    def __init__(self) -> None:
        self.tokens = []
        self.dirty = False

    def add(self, tok: int) -> None:
        tokens = self.tokens
        if tokens and tokens[-1] > tok:
            self.dirty = True  # re-add of an older op: re-sort later
        tokens.append(tok)

    def ensure_sorted(self) -> None:
        if self.dirty:
            # Tokens order by seq (the high bits), so a plain sort is
            # exactly sort-by-age.
            self.tokens.sort()
            self.dirty = False

    def replace(self, tokens: List[int]) -> None:
        """Adopt the survivor list an issue scan kept (already sorted)."""
        self.tokens = tokens

    def __len__(self) -> int:
        return len(self.tokens)
