"""The functional fast-forward dispatch loop.

Kernel module (mypyc-clean; import through
:func:`repro.backend.get_backend`).  Every warm-up path in the tree —
``core.skip``, ``checkpoint.capture`` and the compiled lane of
``FunctionalSimulator.run`` — is the same three-way loop over the
per-static-instruction closures built by
:mod:`repro.functional.compiled`; this module is that loop, factored
once so the compiled backend accelerates all three call sites.

The halt sentinel is *passed in* rather than imported: the closures and
their sentinel stay in ``functional/compiled.py`` (the repro-lint
cross-table rule audits them there), and identity comparison against a
caller-supplied object keeps this module free of cross-layer imports.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple

#: Loop outcomes: the instruction budget ran out first, a halt
#: instruction was reached, or the PC left the program.
FF_BUDGET: int = 0
FF_HALT: int = 1
FF_BAD_PC: int = 2

#: Budget meaning "run to halt" (past any reachable instruction count).
FF_UNBOUNDED: int = 1 << 62


def run_ff(ff_entry: Callable[[int], Optional[Any]], halt: Any,
           state: Any, pc: int, budget: int,
           execute_halt: bool) -> Tuple[int, int, int]:
    """Drive fast-forward closures from *pc* for at most *budget* steps.

    Returns ``(pc, executed, status)``.  On ``FF_HALT`` the PC sits on
    the halt instruction; *execute_halt* decides whether the halt
    counts as executed (the functional simulator's convention) or is
    left for the caller's front end (the timing core's / checkpoint
    capture's convention).  On ``FF_BAD_PC`` the state reflects every
    instruction executed before the PC went off the program; raising is
    the caller's job (each site wants its own message).
    """
    executed = 0
    while executed < budget:
        fn = ff_entry(pc)
        if fn is None:
            return (pc, executed, FF_BAD_PC)
        if fn is halt:
            if execute_halt:
                executed += 1
            return (pc, executed, FF_HALT)
        pc = fn(state)
        executed += 1
    return (pc, executed, FF_BUDGET)
