"""Backend-neutral hot-path kernel modules.

Everything under ``repro.uarch._kernel`` is written to compile cleanly
under **mypyc**: annotation-complete, no ``**kwargs`` on hot functions,
no module-level mutable state, no dynamic attribute tricks (the
``kernel-purity`` repro-lint rule pins these properties).  The same
sources run interpreted when no extension is built — byte-identical
behaviour on both paths is the whole contract, enforced by the golden
corpus and the dual-backend tests.

Import these modules through :func:`repro.backend.get_backend`, not
directly: the backend layer is what decides whether you get the
compiled extension or the interpreted source, reports which one is
active, and keeps the choice out of every cache key.
"""

from typing import Tuple

#: Version of the kernel module set; recorded (with the mypyc marker)
#: in provenance manifests so a cached result always says which kernel
#: produced it.  Bump on any behavioural kernel change.
KERNEL_VERSION: str = "1"

#: Module basenames that make up the kernel (build wiring in setup.py
#: compiles exactly these; the backend layer imports exactly these).
KERNEL_MODULES: Tuple[str, str, str] = ("entry_pool", "events", "ffexec")
