"""Set-associative cache timing model (tags only, LRU, per Table 1).

Data values live in the simulator's memory image; the cache only decides
hit-or-miss latency.  The D-cache is dual ported and non-blocking: each
access resolves independently with its own latency, and the core arbitrates
the two ports per cycle through :class:`PortTracker`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .config import CacheConfig


class SetAssocCache:
    """LRU set-associative tag store."""

    def __init__(self, config: CacheConfig, name: str = "cache"):
        self.config = config
        self.name = name
        self.line_shift = config.line_bytes.bit_length() - 1
        if (1 << self.line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        self.num_sets = config.num_sets
        self.set_mask = self.num_sets - 1
        if self.num_sets & self.set_mask:
            raise ValueError("set count must be a power of two")
        # Each set is an MRU-first list of tags.
        self.sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _locate(self, address: int) -> Tuple[int, int]:
        line = address >> self.line_shift
        return line & self.set_mask, line >> (self.set_mask.bit_length())

    def lookup(self, address: int) -> bool:
        """Probe without updating LRU state or statistics."""
        set_index, tag = self._locate(address)
        return tag in self.sets[set_index]

    def access(self, address: int) -> bool:
        """Access a line: returns True on hit; allocates on miss (LRU)."""
        set_index, tag = self._locate(address)
        ways = self.sets[set_index]
        if tag in ways:
            ways.remove(tag)
            ways.insert(0, tag)
            self.hits += 1
            return True
        self.misses += 1
        ways.insert(0, tag)
        if len(ways) > self.config.associativity:
            ways.pop()
        return False

    def access_latency(self, address: int) -> int:
        """Access and return latency: 0 extra on hit, miss penalty on miss."""
        return 0 if self.access(address) else self.config.miss_latency

    def line_address(self, address: int) -> int:
        return address >> self.line_shift

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class PortTracker:
    """Per-cycle port arbitration for a multi-ported structure."""

    def __init__(self, ports: int):
        self.ports = ports
        self._cycle = -1
        self._used = 0
        self.grants = 0
        self.denials = 0

    def try_acquire(self, cycle: int) -> bool:
        """Claim one port in *cycle*; returns False when all ports are busy."""
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used < self.ports:
            self._used += 1
            self.grants += 1
            return True
        self.denials += 1
        return False

    def available(self, cycle: int) -> int:
        if cycle != self._cycle:
            return self.ports
        return self.ports - self._used
