"""Branch prediction: gshare + return-address stack + indirect target table.

Matches Table 1: gshare [McFarling] with a 10-bit global history register
and a 16K-entry table of 2-bit counters.  The global history is updated
speculatively at prediction time and repaired on squashes from per-branch
snapshots (the timing core records the pre-prediction history with every
fetched branch).  Direction counters are updated non-speculatively at
commit.  Direct jump targets are assumed known at fetch (ideal BTB);
returns use a small RAS; other indirect jumps use a last-target table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from .config import BranchPredictorConfig


@dataclass
class BranchPrediction:
    """What the front end decided for one control instruction."""

    taken: bool
    target: Optional[int]  # None when no target is available (stall-safe)
    history_before: int  # GHR snapshot for repair and for the update index
    ras_snapshot: Tuple[int, ...] = ()  # RAS contents before this prediction
    # True when the direction came from a weak (0b01/0b10) counter; the
    # variable-fetch-rate frontend throttles behind such branches.
    low_confidence: bool = False


class Gshare:
    """Two-level gshare direction predictor with 2-bit saturating counters."""

    def __init__(self, config: BranchPredictorConfig):
        self.history_bits = config.history_bits
        self.history_mask = (1 << config.history_bits) - 1
        self.table_size = config.counter_entries
        self.index_mask = self.table_size - 1
        if self.table_size & self.index_mask:
            raise ValueError("counter table size must be a power of two")
        self.counters = bytearray([2] * self.table_size)  # weakly taken
        self.history = 0

    def index(self, pc: int, history: int) -> int:
        return ((pc >> 2) ^ history) & self.index_mask

    def predict(self, pc: int) -> bool:
        """Predict direction and speculatively update the history register."""
        taken = self.counters[self.index(pc, self.history)] >= 2
        self._shift_history(taken)
        return taken

    def confidence(self, pc: int, history: int) -> bool:
        """True when the counter for (pc, history) is saturated (0 or 3).

        Weak counters (1/2) are the low-confidence band the
        variable-fetch-rate frontend throttles on.  Read-only: call with
        the pre-prediction history snapshot.
        """
        counter = self.counters[self.index(pc, history)]
        return counter == 0 or counter == 3

    def update(self, pc: int, taken: bool, history_before: int) -> None:
        """Train the counter that made the prediction (done at commit)."""
        slot = self.index(pc, history_before)
        counter = self.counters[slot]
        if taken:
            self.counters[slot] = min(3, counter + 1)
        else:
            self.counters[slot] = max(0, counter - 1)

    def repair(self, history_before: int, actual_taken: bool) -> None:
        """Rewind to the pre-branch history and shift in the real outcome."""
        self.history = history_before
        self._shift_history(actual_taken)

    def _shift_history(self, taken: bool) -> None:
        self.history = ((self.history << 1) | int(taken)) & self.history_mask


class ReturnAddressStack:
    """A small circular return-address stack (Table 2's ~100% return rates)."""

    def __init__(self, entries: int):
        self.entries = entries
        self.stack: List[int] = []

    def push(self, address: int) -> None:
        self.stack.append(address)
        if len(self.stack) > self.entries:
            self.stack.pop(0)

    def pop(self) -> Optional[int]:
        return self.stack.pop() if self.stack else None

    def snapshot(self) -> Tuple[int, ...]:
        return tuple(self.stack)

    def restore(self, snapshot: Tuple[int, ...]) -> None:
        self.stack = list(snapshot)


class IndirectPredictor:
    """Last-target table for indirect jumps that are not returns."""

    def __init__(self, entries: int):
        self.index_mask = entries - 1
        self.targets: List[Optional[int]] = [None] * entries

    def predict(self, pc: int) -> Optional[int]:
        return self.targets[(pc >> 2) & self.index_mask]

    def update(self, pc: int, target: int) -> None:
        self.targets[(pc >> 2) & self.index_mask] = target


class BranchPredictorUnit:
    """Facade combining direction, return and indirect-target prediction."""

    def __init__(self, config: BranchPredictorConfig):
        self.config = config
        self.gshare = Gshare(config)
        self.ras = ReturnAddressStack(config.ras_entries)
        self.indirect = IndirectPredictor(config.indirect_entries)

    # -- fetch-time interface ---------------------------------------------------

    def predict_branch(self, pc: int, target: int) -> BranchPrediction:
        """Conditional branch with a known (direct) target."""
        history = self.gshare.history
        ras = self.ras.snapshot()
        taken = self.gshare.predict(pc)
        return BranchPrediction(taken, target if taken else None, history,
                                ras,
                                low_confidence=not self.gshare.confidence(
                                    pc, history))

    def predict_call(self, pc: int, return_address: int,
                     target: Optional[int]) -> BranchPrediction:
        """``jal`` (direct) or ``jalr`` (indirect, target may be unknown)."""
        history = self.gshare.history
        ras = self.ras.snapshot()
        self.ras.push(return_address)
        if target is None:
            target = self.indirect.predict(pc)
        return BranchPrediction(True, target, history, ras)

    def predict_return(self, pc: int) -> BranchPrediction:
        history = self.gshare.history
        ras = self.ras.snapshot()
        return BranchPrediction(True, self.ras.pop(), history, ras)

    def predict_indirect(self, pc: int) -> BranchPrediction:
        return BranchPrediction(True, self.indirect.predict(pc),
                                self.gshare.history, self.ras.snapshot())

    # -- resolution-time interface ----------------------------------------------

    def repair(self, prediction: BranchPrediction, actual_taken: bool,
               is_conditional: bool) -> None:
        """Restore front-end predictor state after a squash at this branch."""
        self.ras.restore(prediction.ras_snapshot)
        if is_conditional:
            self.gshare.repair(prediction.history_before, actual_taken)
        else:
            self.gshare.history = prediction.history_before

    def repair_call(self, prediction: BranchPrediction,
                    return_address: int) -> None:
        """Like :meth:`repair` but re-applies the call's RAS push."""
        self.ras.restore(prediction.ras_snapshot)
        self.gshare.history = prediction.history_before
        self.ras.push(return_address)

    # -- commit-time interface ---------------------------------------------------

    def commit_branch(self, pc: int, taken: bool,
                      prediction: BranchPrediction) -> None:
        self.gshare.update(pc, taken, prediction.history_before)

    def commit_indirect(self, pc: int, target: int) -> None:
        self.indirect.update(pc, target)
