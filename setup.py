"""Build script: optionally compiles the kernel with mypyc.

The default build is pure Python.  Set ``REPRO_BUILD_COMPILED=1`` (with
mypy installed — the ``compiled`` extra pulls it in) to compile the
hot-path kernel modules under ``src/repro/uarch/_kernel/`` into C
extensions:

    REPRO_BUILD_COMPILED=1 pip install -e .[compiled]

The extensions shadow the ``.py`` sources under their canonical import
names; ``repro.backend`` detects them at runtime and ``REPRO_BACKEND``
(auto|python|compiled) picks which implementation runs.  Both paths are
pinned byte-identical by the golden corpus and the dual-backend tests,
so building the extension can only change speed, never results.
"""

import os

from setuptools import setup

KERNEL_SOURCES = [
    "src/repro/uarch/_kernel/entry_pool.py",
    "src/repro/uarch/_kernel/events.py",
    "src/repro/uarch/_kernel/ffexec.py",
]


def _ext_modules():
    if os.environ.get("REPRO_BUILD_COMPILED", "") != "1":
        return []
    try:
        from mypyc.build import mypycify
    except ImportError as exc:  # fail loudly: an explicit request
        raise SystemExit(
            "REPRO_BUILD_COMPILED=1 but mypyc is not installed.  "
            "Install the build dependency first (pip install mypy, or "
            "pip install -e .[compiled]) and retry; unset "
            "REPRO_BUILD_COMPILED for a pure-Python install."
        ) from exc
    # opt_level 3 is mypyc's release optimisation level; the kernel
    # modules are annotation-complete, so no per-file flags are needed.
    return mypycify(KERNEL_SOURCES, opt_level="3")


setup(ext_modules=_ext_modules())
