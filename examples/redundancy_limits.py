#!/usr/bin/env python3
"""Section 4.3 in miniature: how much redundancy exists, and how much of
it could IR capture?

Runs the Figure 8/9/10 limit study over any (or every) workload: results
are classified unique / repeated / derivable, repeated instructions are
bucketed by input readiness, and the reusable fraction of the redundancy
is reported — the paper's bound on IR's reach (84-97% there).

Run:  python examples/redundancy_limits.py [workload|all]
"""

import sys

from repro.functional import FunctionalSimulator
from repro.redundancy import ReusabilityAnalyzer
from repro.workloads import get_workload, workload_names

WARMUP = 40_000
WINDOW = 60_000


def study(name: str) -> None:
    spec = get_workload(name)
    sim = FunctionalSimulator(spec.program())
    sim.skip(spec.skip_instructions + WARMUP)
    analyzer = ReusabilityAnalyzer()
    for outcome in sim.stream(WINDOW):
        analyzer.observe(outcome)

    classified = analyzer.classifier.counts
    reuse = analyzer.counts
    pct = classified.as_percentages()
    ready = reuse.readiness_percentages()

    print(f"== {name} ({WINDOW} dynamic instructions) ==")
    print(f"  Figure 8  unique {pct['unique']:5.1f}%   "
          f"repeated {pct['repeated']:5.1f}%   "
          f"derivable {pct['derivable']:5.1f}%   "
          f"unaccounted {pct['unaccounted']:5.1f}%")
    print(f"  Figure 9  producers reused {ready['producers_reused']:5.1f}%  "
          f"ready (far) {ready['producers_far']:5.1f}%  "
          f"not ready {ready['producers_near']:5.1f}%")
    print(f"  Figure 10 reusable = "
          f"{100 * reuse.reusable_fraction_of_redundant:5.1f}% "
          f"of the redundancy "
          f"(paper band: 84-97%)")
    print()


def main() -> None:
    target = sys.argv[1] if len(sys.argv) > 1 else "m88ksim"
    names = workload_names() if target == "all" else [target]
    for name in names:
        study(name)
    print("Interpretation: most results repeat; IR's operand-based,")
    print("non-speculative detection captures the bulk of them — its")
    print("restrictiveness is not the limiting factor (Section 4.3).")


if __name__ == "__main__":
    main()
