#!/usr/bin/env python3
"""Tour of the seven SPECint95-analog workloads.

For each analog, prints what it imitates, its measured character (branch
prediction, instruction mix) and how the two techniques engage with it —
a miniature Table 2 + Table 3 on one screen.

Run:  python examples/workload_tour.py [instructions-per-run]
"""

import sys

from repro import OutOfOrderCore, base_config, ir_config, vp_config
from repro.workloads import all_workloads


def simulate(spec, config, instructions):
    core = OutOfOrderCore(config, spec.program())
    core.skip(spec.skip_instructions)
    return core.run(max_instructions=instructions, max_cycles=600_000)


def main() -> None:
    instructions = int(sys.argv[1]) if len(sys.argv) > 1 else 6_000
    print(f"{instructions} committed instructions per run "
          f"(paper: 200M cycles of real SPEC95)\n")
    header = (f"{'bench':<9} {'bp%':>6} {'paper':>6} {'mem%':>5} "
              f"{'IR reuse%':>10} {'VP pred%':>9} "
              f"{'IR speedup':>11} {'VP speedup':>11}")
    print(header)
    print("-" * len(header))
    for name, spec in all_workloads().items():
        base = simulate(spec, base_config(), instructions)
        reuse = simulate(spec, ir_config(), instructions)
        predict = simulate(spec, vp_config(), instructions)
        print(f"{name:<9} "
              f"{100 * base.branch_prediction_rate:>6.1f} "
              f"{spec.paper.branch_pred_rate:>6.1f} "
              f"{100 * base.memory_ops / max(base.committed, 1):>5.1f} "
              f"{100 * reuse.ir_result_rate:>10.1f} "
              f"{100 * predict.vp_result_rate:>9.1f} "
              f"{base.cycles / reuse.cycles:>10.2f}x "
              f"{base.cycles / predict.cycles:>10.2f}x")
    print()
    for name, spec in all_workloads().items():
        print(f"{name:<9} {spec.description}")


if __name__ == "__main__":
    main()
