#!/usr/bin/env python3
"""Watch instructions flow through the pipeline under each technique.

Uses :class:`repro.uarch.trace.PipelineTracer` to print a Figure-2-style
table — dispatch / issue / completion / commit cycle per instruction,
plus how its value was obtained — for the base, VP and IR machines over
the same redundant loop (steady state).

Run:  python examples/trace_pipeline.py
"""

from repro import OutOfOrderCore, assemble, base_config, ir_config, vp_config
from repro.uarch.trace import PipelineTracer

SOURCE = """
main:   li $s0, 40
loop:   li $t0, 6          # a redundant four-instruction chain
        add $t1, $t0, $t0
        add $t2, $t1, $t1
        add $t3, $t2, $t2
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def main() -> None:
    for config in (base_config(), vp_config(), ir_config()):
        core = OutOfOrderCore(config, assemble(SOURCE))
        # Skip the first ~25 commits so the VPT/RB are warm.
        tracer = PipelineTracer(core, limit=7, start_cycle=30)
        core.run(max_cycles=20_000)
        print(f"=== {config.name} ===")
        print(tracer.render())
        print()
    print("Reading the 'how' column: 'executed' instructions waited for")
    print("their operands; 'predicted' ones issued immediately on VPT")
    print("values and verified at execute; 'reused' ones never touched a")
    print("functional unit — they completed at dispatch.")


if __name__ == "__main__":
    main()
