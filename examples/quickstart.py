#!/usr/bin/env python3
"""Quickstart: assemble a program and compare base / VP / IR machines.

The program recomputes a redundant dependent chain (a scaled dot product
over a small constant table) — exactly the kind of computation both
techniques collapse.  We run it through the paper's Table 1 machine in
three flavours and print what each technique captured and what it bought.

Run:  python examples/quickstart.py
"""

from repro import OutOfOrderCore, assemble, base_config, ir_config, vp_config

SOURCE = """
.data
weights: .word 3, 5, 7, 11
signal:  .word 2, 4, 6, 8

.text
main:   li $s0, 600              # iterations
outer:  li $t0, 0                # element index
        li $s3, 0                # accumulator
dot:    sll $t1, $t0, 2
        lw $t2, weights($t1)     # same loads every iteration
        lw $t3, signal($t1)
        mul $t4, $t2, $t3        # same multiplies every iteration
        add $s3, $s3, $t4
        addi $t0, $t0, 1
        slti $t5, $t0, 4
        bnez $t5, dot
        add $s4, $s4, $s3
        addi $s0, $s0, -1
        bnez $s0, outer
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    configs = [base_config(), vp_config(), ir_config()]

    print(f"{'machine':<20} {'cycles':>8} {'IPC':>6} {'speedup':>8} "
          f"{'captured':>10}")
    print("-" * 58)
    base_cycles = None
    for config in configs:
        core = OutOfOrderCore(config, program)
        stats = core.run(max_cycles=200_000)
        assert stats.halted
        if base_cycles is None:
            base_cycles = stats.cycles
        if config.vp.enabled:
            captured = f"{100 * stats.vp_result_rate:.0f}% pred"
        elif config.ir.enabled:
            captured = f"{100 * stats.ir_result_rate:.0f}% reuse"
        else:
            captured = "-"
        print(f"{config.name:<20} {stats.cycles:>8} {stats.ipc:>6.2f} "
              f"{base_cycles / stats.cycles:>7.2f}x {captured:>10}")

    print()
    print("Both techniques collapse the loop's dependent chain: VP by")
    print("predicting the results and verifying at execute (late")
    print("validation); IR by recognising the repeated computation at")
    print("decode and skipping execution entirely (early validation).")


if __name__ == "__main__":
    main()
