#!/usr/bin/env python3
"""Section 4.2.2 in miniature: how VP's branch handling changes the game.

Sweeps the four VP configurations (ME/NME x SB/NSB) at 0- and 1-cycle
verification latency over one SPEC-analog workload, printing squash
counts, branch-resolution latency and speedup side by side — the paper's
Table 4 + Figure 4 + Figure 6 story on a single screen.

Run:  python examples/branch_interaction_study.py [workload]
"""

import sys

from repro import OutOfOrderCore, base_config
from repro.experiments.configs import short_vp_name, vp_matrix
from repro.uarch.config import PredictorKind
from repro.workloads import get_workload, workload_names

INSTRUCTIONS = 12_000


def simulate(spec, config):
    core = OutOfOrderCore(config, spec.program())
    core.skip(spec.skip_instructions)
    return core.run(max_instructions=INSTRUCTIONS, max_cycles=400_000)


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "perl"
    if name not in workload_names():
        raise SystemExit(f"unknown workload {name!r}; "
                         f"choose from {workload_names()}")
    spec = get_workload(name)
    base = simulate(spec, base_config())
    print(f"workload: {name}  (base: {base.cycles} cycles, "
          f"{base.branch_squashes} squashes, "
          f"resolution {base.mean_branch_resolution_latency:.1f} cyc)")
    print()
    print(f"{'config':<10} {'verify':>6} {'squashes':>9} {'spurious':>9} "
          f"{'resolve (norm)':>14} {'speedup':>8}")
    print("-" * 62)
    for latency in (0, 1):
        for config in vp_matrix(PredictorKind.MAGIC, latency):
            stats = simulate(spec, config)
            resolve = (stats.mean_branch_resolution_latency
                       / (base.mean_branch_resolution_latency or 1.0))
            print(f"{short_vp_name(config):<10} {latency:>6} "
                  f"{stats.branch_squashes:>9} {stats.spurious_squashes:>9} "
                  f"{resolve:>14.2f} {base.cycles / stats.cycles:>7.2f}x")
        print()
    print("What to look for (Section 4.2.2):")
    print(" * SB resolves branches sooner (lower normalised latency) but")
    print("   adds spurious squashes when predictions are wrong;")
    print(" * NSB never squashes spuriously but resolves late — and the")
    print("   1-cycle verification latency hurts it more than SB.")


if __name__ == "__main__":
    main()
