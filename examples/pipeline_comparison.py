#!/usr/bin/env python3
"""Reproduce Figure 2: a dependent chain through three pipelines.

The paper's Figure 2 walks instructions I, J, K (each dependent on the
previous) through (i) the base superscalar, (ii) a pipeline with VP, and
(iii) a pipeline with IR:

* base: I, J, K execute serially — the chain commits in cycle 6;
* VP:   predicted inputs let all three execute in parallel — commit in 4;
* IR:   the whole chain is reused at decode — commit in cycle 3.

This example runs a real I-J-K chain (warmed up so the VPT/RB know it)
and prints the cycle each instruction committed in, relative to the
chain's fetch cycle.

Run:  python examples/pipeline_comparison.py
"""

from repro import OutOfOrderCore, assemble, base_config, ir_config, vp_config

# The observed chain lives in a loop so the predictor/reuse-buffer have
# seen it; we report timing for a late iteration (steady state).
SOURCE = """
main:   li $s0, 50
loop:   li $t0, 7          # I:  t0 = 7
        add $t1, $t0, $t0  # J:  t1 = I + I   (depends on I)
        add $t2, $t1, $t1  # K:  t2 = J + J   (depends on J)
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""

CHAIN_NAMES = {0: "I (li)", 1: "J (add)", 2: "K (add)"}


def chain_timings(config):
    program = assemble(SOURCE)
    core = OutOfOrderCore(config, program)
    loop_start = program.symbol("loop")
    commits = {}

    def record(op, cycle):
        offset = (op.inst.pc - loop_start) // 4
        if offset in CHAIN_NAMES:
            commits[offset] = (cycle, op.dispatch_cycle)

    core.on_commit = record
    core.run(max_cycles=20_000)
    return commits


def main() -> None:
    print("Dependent chain I -> J -> K (steady state, relative cycles)")
    print()
    print(f"{'pipeline':<12} {'inst':<8} {'decoded':>8} {'committed':>10} "
          f"{'chain commit spread':>20}")
    print("-" * 62)
    for config in (base_config(), vp_config(), ir_config()):
        commits = chain_timings(config)
        origin = min(dispatch for _, dispatch in commits.values())
        spread = (max(cycle for cycle, _ in commits.values())
                  - min(cycle for cycle, _ in commits.values()))
        for offset in sorted(commits):
            cycle, dispatch = commits[offset]
            print(f"{config.name:<12} {CHAIN_NAMES[offset]:<8} "
                  f"{dispatch - origin:>8} {cycle - origin:>10}"
                  + (f" {spread:>19}" if offset == 2 else ""))
        print()
    print("Figure 2's point: in the base pipeline the chain commits over")
    print("several cycles (serial execution); with VP and IR the whole")
    print("chain completes together because the dependences collapsed.")


if __name__ == "__main__":
    main()
