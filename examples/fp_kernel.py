#!/usr/bin/env python3
"""VP and IR on floating-point code (the Table 1 FP pipeline).

The paper evaluates SPECint95, but its Table 1 machine has a full FP
side — 4 FP adders (2/1), one FP MULT/DIV unit (mult 4/1, div 12/12,
sqrt 24/24) — which this repository models too.  FP code is fertile
ground for both techniques: FP latencies are long, so collapsing a
dependence saves more cycles per hit, and reused FP operations free the
scarce MULT/DIV unit.

The kernel normalises a vector repeatedly (rsqrt-style): a dot product,
one sqrt, one divide, and a scale pass — heavy on exactly the
long-latency units.

Run:  python examples/fp_kernel.py
"""

from repro import OutOfOrderCore, assemble, base_config, ir_config, vp_config

SOURCE = """
.data
vec:  .float 3.0, 4.0, 12.0, 84.0
norm: .float 0.0, 0.0, 0.0, 0.0

.text
main:   li $s0, 250              # repetitions (same data every time)
outer:  la $s1, vec
        li.s $f0, 0.0            # accumulator
        li $t0, 0
dot:    sll $t1, $t0, 2
        lwc1 $f1, vec($t1)
        mul.s $f2, $f1, $f1      # 4-cycle multiplies
        add.s $f0, $f0, $f2      # 2-cycle dependent adds
        addi $t0, $t0, 1
        slti $t2, $t0, 4
        bnez $t2, dot

        sqrt.s $f3, $f0          # 24 cycles, not pipelined
        li $t0, 0
scale:  sll $t1, $t0, 2
        lwc1 $f4, vec($t1)
        div.s $f5, $f4, $f3      # 12 cycles on the single FP div unit
        swc1 $f5, norm($t1)
        addi $t0, $t0, 1
        slti $t2, $t0, 4
        bnez $t2, scale

        addi $s0, $s0, -1
        bnez $s0, outer
        halt
"""


def main() -> None:
    program = assemble(SOURCE)
    print(f"{'machine':<22} {'cycles':>8} {'speedup':>8} "
          f"{'FP work skipped':>16}")
    print("-" * 58)
    base_cycles = None
    base_execs = None
    for config in (base_config(), vp_config(), ir_config()):
        core = OutOfOrderCore(config, program)
        stats = core.run(max_cycles=500_000)
        assert stats.halted
        if base_cycles is None:
            base_cycles = stats.cycles
            base_execs = stats.execution_attempts
        skipped = base_execs - stats.execution_attempts
        print(f"{config.name:<22} {stats.cycles:>8} "
              f"{base_cycles / stats.cycles:>7.2f}x "
              f"{skipped:>12} ops")
    print()
    print("Every iteration recomputes the same normalisation: IR lifts")
    print("the whole sqrt/divide chain out of the 24- and 12-cycle units;")
    print("VP predicts the results but still occupies the units to verify.")


if __name__ == "__main__":
    main()
