#!/usr/bin/env python3
"""The paper's suggested future work: a hybrid of VP and IR.

The conclusion of Sodani & Sohi (1998) motivates "other mechanisms
(which may be hybrid of VP and IR) that exploit redundancy in programs
more effectively".  This example runs such a hybrid: the reuse test gets
first claim (non-speculative, no verification needed); instructions the
RB cannot validate fall back to value prediction.

The demo loop mixes both kinds of redundancy: a constant-rooted chain
(classic reuse territory) and a stride-rooted chain whose inputs are
never ready at the reuse test (the restriction the paper quantifies in
Figure 9) but whose values VP predicts happily.

Run:  python examples/hybrid_technique.py [workload]
      (with a workload name, compares the techniques on a SPEC analog)
"""

import sys

from repro import OutOfOrderCore, assemble, base_config, ir_config, vp_config
from repro.uarch.config import hybrid_config
from repro.workloads import get_workload, workload_names

_IR_CHAIN = "\n".join(
    f"        add $t{5 + i % 3}, $t{5 + (i - 1) % 3}, $t{5 + (i - 1) % 3}"
    for i in range(1, 9))
_VP_CHAIN = "\n".join(
    f"        addi $t{2 + i % 3}, $t{2 + (i - 1) % 3}, {i}"
    for i in range(1, 9))
SOURCE = f"""
main:   li $s0, 600
loop:   li $t5, 13           # constant-rooted chain: IR captures this
{_IR_CHAIN}
        addi $t0, $t0, 1     # stride-rooted chain: VP captures this
        andi $t2, $t0, 3
{_VP_CHAIN}
        addi $s0, $s0, -1
        bnez $s0, loop
        halt
"""


def simulate(config, program=None, spec=None):
    core = OutOfOrderCore(config, program if program is not None
                          else spec.program())
    if spec is not None:
        core.skip(spec.skip_instructions)
        return core.run(max_instructions=15_000, max_cycles=500_000)
    return core.run(max_cycles=200_000)


def main() -> None:
    spec = None
    program = None
    if len(sys.argv) > 1:
        name = sys.argv[1]
        if name not in workload_names():
            raise SystemExit(f"unknown workload {name!r}; "
                             f"choose from {workload_names()}")
        spec = get_workload(name)
        print(f"workload: {name}")
    else:
        program = assemble(SOURCE)
        print("workload: built-in mixed-redundancy loop")
    print()
    print(f"{'machine':<22} {'cycles':>8} {'speedup':>8} "
          f"{'reused %':>9} {'predicted %':>12}")
    print("-" * 64)
    base_cycles = None
    for config in (base_config(), ir_config(), vp_config(),
                   hybrid_config()):
        stats = simulate(config, program=program, spec=spec)
        if base_cycles is None:
            base_cycles = stats.cycles
        print(f"{config.name:<22} {stats.cycles:>8} "
              f"{base_cycles / stats.cycles:>7.2f}x "
              f"{100 * stats.ir_result_rate:>8.1f} "
              f"{100 * stats.vp_result_rate:>11.1f}")
    print()
    print("The hybrid serves reuse-friendly redundancy non-speculatively")
    print("(no verification, no execution) and falls back to prediction")
    print("for redundancy the operand-based test cannot reach.")


if __name__ == "__main__":
    main()
